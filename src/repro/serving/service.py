"""The long-lived serving layer: micro-batching, caching, hot-swap.

:class:`RecommendService` turns the query *library* (``TopNEngine``)
into a query *system*.  The paper's central idea — amortize fixed cost
over many independent k-sized problems — applies to serving verbatim:

* **Micro-batch coalescing.**  Requests are queued and a worker merges
  every request that arrives within ``batch_window`` seconds (or up to
  ``max_batch`` users) into *one* batched ``query()`` call, so tile
  setup, exclusion lookup and the GEMM launch amortize exactly like the
  paper's thread batching amortizes per-row solve overhead.  Requests
  for different ``n`` coalesce too: the batch queries ``max(n)`` and
  each caller gets its prefix (top-n is a prefix of top-n_max under the
  engine's total order).
* **LRU result cache.**  Answers are cached per ``(generation, user,
  n)`` and served on :meth:`submit` without touching the engine.
  Invalidation is explicit: rating updates and item fold-in/hot-swap
  advance the generation (old entries become unreachable) and clear the
  cache; *user* fold-in keeps both — appended rows provably cannot
  change any existing user's result.
* **Incremental fold-in.**  :meth:`fold_in_users` /
  :meth:`fold_in_items` delegate to the recommender's fold-in (one
  batched k×k S3 solve through the binned kernels — see
  :mod:`repro.serving.foldin`), then atomically install a new engine.
  No retrain, no downtime.
* **Atomic hot-swap.**  All mutable state lives in one immutable
  :class:`ModelState`; workers read the reference once per batch, so a
  request is served *entirely* from one generation — pre-swap or
  post-swap, never a torn mixture.  :meth:`hot_swap` builds the new
  state completely (engine constructed, exclusion keys attached) before
  the single reference assignment that publishes it.

:class:`ServiceEndpoint` exposes the service over stdlib HTTP (the
pattern of :mod:`repro.obs.endpoint`): ``GET /recommend?user=U&n=N``,
``/healthz``, ``/stats``, and ``/metrics`` — with ``?window=1`` serving
*per-interval* latency percentiles via the quantile sketches' windowed
snapshots.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.endpoint import PROMETHEUS_CONTENT_TYPE
from repro.obs.exporter import render_prometheus
from repro.obs.spans import is_enabled
from repro.serving.engine import TopNEngine
from repro.sparse.csr import CSRMatrix

__all__ = [
    "ModelState",
    "ServeResult",
    "ServiceStats",
    "RecommendService",
    "ServiceEndpoint",
]


@dataclass(frozen=True)
class ModelState:
    """Everything one request needs, swapped as a single reference.

    Immutable by construction: a worker reads ``service._state`` once
    per batch and serves the whole batch from that snapshot, so there is
    no window in which a request can observe the engine of one model and
    the exclusion matrix of another.
    """

    generation: int
    engine: TopNEngine
    exclude: CSRMatrix | None  # row-sliceable exclusion (None = no filter)


@dataclass(frozen=True)
class ServeResult:
    """One answered request."""

    user: int
    n: int
    recommendations: tuple  # ((item, score), ...) truncated like row()
    generation: int
    cached: bool


class ServiceStats:
    """Always-on plain counters (the obs registry is gated; these are
    what the bench and the ``/stats`` endpoint read unconditionally)."""

    __slots__ = (
        "_lock", "requests", "cache_hits", "cache_misses", "batches",
        "batched_users", "folded_users", "folded_items", "updated_users",
        "swaps", "errors",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_users = 0
        self.folded_users = 0
        self.folded_items = 0
        self.updated_users = 0
        self.swaps = 0
        self.errors = 0

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, d in deltas.items():
                setattr(self, name, getattr(self, name) + d)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            out = {
                name: getattr(self, name)
                for name in self.__slots__
                if name != "_lock"
            }
        batches = out["batches"]
        out["mean_batch_size"] = out["batched_users"] / batches if batches else 0.0
        return out


class _Request:
    __slots__ = ("user", "n", "future", "t_submit")

    def __init__(self, user: int, n: int, future: Future, t_submit: float):
        self.user = user
        self.n = n
        self.future = future
        self.t_submit = t_submit


class RecommendService:
    """Worker-pool request loop over a :class:`TopNEngine`.

    ``recommender`` is a fitted :class:`repro.api.Recommender` (duck
    typed: anything with ``model``, ``_train_csr``, ``algorithm`` and
    the fold-in methods serves).  ``max_batch=1`` or ``batch_window=0``
    disables coalescing beyond draining what is already queued — the
    "unbatched" baseline of the serving benchmark; ``cache_size=0``
    disables the result cache.
    """

    def __init__(
        self,
        recommender,
        *,
        max_batch: int = 32,
        batch_window: float = 0.002,
        cache_size: int = 4096,
        workers: int = 1,
        exclude_seen: bool = True,
        engine_kwargs: dict | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._rec = recommender
        self.max_batch = int(max_batch)
        self.batch_window = float(batch_window)
        self.cache_size = int(cache_size)
        self.exclude_seen = bool(exclude_seen)
        self._engine_kwargs = dict(engine_kwargs or {})
        self._n_workers = int(workers)
        self.stats = ServiceStats()
        self._cache: OrderedDict[tuple, ServeResult] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._queue: deque[_Request] = deque()
        self._qcond = threading.Condition()
        self._stopping = False
        self._running = False
        self._threads: list[threading.Thread] = []
        # Serializes every model mutation (fold-in, update, swap); reads
        # never take it — they see either the old or the new state.
        self._mutate_lock = threading.Lock()
        self._state = self._build_state(0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def generation(self) -> int:
        return self._state.generation

    def start(self) -> "RecommendService":
        if self._running:
            return self
        self._stopping = False
        self._running = True
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            for i in range(self._n_workers)
        ]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Drain the queue and stop the workers (no request is lost)."""
        if not self._running:
            return
        with self._qcond:
            self._stopping = True
            self._qcond.notify_all()
        for t in self._threads:
            t.join(timeout=30.0)
        self._threads = []
        self._running = False

    def __enter__(self) -> "RecommendService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, user: int, n: int = 10) -> Future:
        """Enqueue one request; the future resolves to a :class:`ServeResult`.

        Cache hits resolve immediately without touching the queue.
        """
        user = int(user)
        n = int(n)
        if n <= 0:
            raise ValueError("n must be positive")
        state = self._state
        if not 0 <= user < state.engine.n_users:
            raise IndexError(
                f"user {user} out of range for {state.engine.n_users} users"
            )
        self.stats.bump(requests=1)
        future: Future = Future()
        cached = self._cache_get(state.generation, user, n)
        if cached is not None:
            self.stats.bump(cache_hits=1)
            if is_enabled():
                obs_metrics.inc("service.requests")
                obs_metrics.inc("service.cache_hits")
                obs_metrics.observe_latency("service.request.seconds", 0.0)
            future.set_result(
                ServeResult(user, n, cached.recommendations, cached.generation, True)
            )
            return future
        self.stats.bump(cache_misses=1)
        with self._qcond:
            if not self._running or self._stopping:
                raise RuntimeError("RecommendService is not running")
            self._queue.append(_Request(user, n, future, perf_counter()))
            depth = len(self._queue)
            self._qcond.notify()
        if is_enabled():
            obs_metrics.inc("service.requests")
            obs_metrics.inc("service.cache_misses")
            obs_metrics.set_gauge("service.queue_depth", depth)
        return future

    def recommend(
        self, user: int, n: int = 10, timeout: float | None = 30.0
    ) -> list[tuple[int, float]]:
        """Blocking convenience wrapper: ``[(item, score), ...]``."""
        return list(self.submit(user, n).result(timeout).recommendations)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._serve_batch(batch)
            except BaseException as exc:  # keep the worker alive
                self.stats.bump(errors=1)
                for req in batch:
                    if not req.future.done():
                        req.future.set_exception(exc)

    def _next_batch(self) -> list[_Request] | None:
        """Pop one request, then coalesce until the window or cap closes."""
        with self._qcond:
            while not self._queue:
                if self._stopping:
                    return None
                self._qcond.wait()
            batch = [self._queue.popleft()]
            if self.max_batch > 1 and self.batch_window > 0:
                deadline = time.monotonic() + self.batch_window
                while len(batch) < self.max_batch:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._stopping:
                        break
                    self._qcond.wait(timeout=remaining)
            else:
                while len(batch) < self.max_batch and self._queue:
                    batch.append(self._queue.popleft())
            if self._queue:
                self._qcond.notify()
        return batch

    def _serve_batch(self, batch: list[_Request]) -> None:
        # ONE state read serves the whole batch: generation, engine and
        # exclusion are a consistent snapshot even mid-hot-swap.
        state = self._state
        users = np.fromiter((r.user for r in batch), dtype=np.int64)
        n_max = max(r.n for r in batch)
        result = state.engine.query(users, n=n_max, exclude=state.exclude)
        done = perf_counter()
        for pos, req in enumerate(batch):
            row = tuple(result.row(pos)[: req.n])
            res = ServeResult(req.user, req.n, row, state.generation, False)
            self._cache_put(state.generation, req.user, req.n, res)
            req.future.set_result(res)
        self.stats.bump(batches=1, batched_users=len(batch))
        if is_enabled():
            obs_metrics.inc("service.batches")
            obs_metrics.observe("service.batch_size", len(batch))
            obs_metrics.set_gauge("service.generation", state.generation)
            with self._qcond:
                depth = len(self._queue)
            obs_metrics.set_gauge("service.queue_depth", depth)
            for req in batch:
                obs_metrics.observe_latency(
                    "service.request.seconds", done - req.t_submit
                )

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def _cache_get(self, gen: int, user: int, n: int) -> ServeResult | None:
        if self.cache_size <= 0:
            return None
        key = (gen, user, n)
        with self._cache_lock:
            res = self._cache.get(key)
            if res is not None:
                self._cache.move_to_end(key)
            return res

    def _cache_put(self, gen: int, user: int, n: int, res: ServeResult) -> None:
        if self.cache_size <= 0:
            return
        with self._cache_lock:
            self._cache[(gen, user, n)] = res
            self._cache.move_to_end((gen, user, n))
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            entries = len(self._cache)
        if is_enabled():
            obs_metrics.set_gauge("service.cache_entries", entries)

    def cache_entries(self) -> int:
        with self._cache_lock:
            return len(self._cache)

    def invalidate_user(self, user: int) -> int:
        """Drop every cached result of one user (any n, any generation)."""
        user = int(user)
        with self._cache_lock:
            dead = [k for k in self._cache if k[1] == user]
            for k in dead:
                del self._cache[k]
        return len(dead)

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
        if is_enabled():
            obs_metrics.set_gauge("service.cache_entries", 0)

    # ------------------------------------------------------------------
    # model mutation: fold-in, rating updates, hot-swap
    # ------------------------------------------------------------------
    def fold_in_users(self, ratings) -> np.ndarray:
        """Fold new users in (no retrain) and serve them immediately.

        The generation does **not** advance: the item factors and every
        existing user row are bitwise-untouched, so cached results stay
        valid — only the engine/exclusion snapshot is rebuilt to cover
        the appended rows.  Returns the new global user ids.
        """
        with self._mutate_lock:
            new_users = self._rec.fold_in_users(ratings)
            self._install_state(self._state.generation)
        self.stats.bump(folded_users=int(new_users.size))
        if is_enabled():
            obs_metrics.inc("service.folded_users", float(new_users.size))
        return new_users

    def fold_in_items(self, ratings) -> np.ndarray:
        """Fold new items in; the catalog changed, so invalidate.

        Any user's top-N may now include a new item, so the generation
        advances and the cache is cleared.  Returns the new item ids.
        """
        with self._mutate_lock:
            new_items = self._rec.fold_in_items(ratings)
            self._install_state(self._state.generation + 1)
            self.clear_cache()
        self.stats.bump(folded_items=int(new_items.size))
        if is_enabled():
            obs_metrics.inc("service.folded_items", float(new_items.size))
        return new_items

    def update_ratings(self, updates) -> np.ndarray:
        """Fold new/changed ratings of existing users into the model.

        Re-solves only the affected users' rows (one batched k×k solve)
        and merges the entries into the exclusion matrix.  The
        generation advances — affected users' cached entries (and any
        result computed concurrently from the pre-update snapshot)
        become unreachable.  Returns the affected user ids.
        """
        with self._mutate_lock:
            users = self._rec.update_ratings(updates)
            self._install_state(self._state.generation + 1)
            self.clear_cache()
        self.stats.bump(updated_users=int(users.size))
        if is_enabled():
            obs_metrics.inc("service.updated_users", float(users.size))
        return users

    def hot_swap(self, source, mmap_mode: str | None = None) -> int:
        """Atomically replace the served model; returns the new generation.

        ``source`` is a checkpoint path (directory or ``.npz``, loaded
        via :meth:`repro.api.Recommender.load`) or an already-fitted
        recommender.  The new state is built *completely* — engine
        constructed, exclusion keys attached — before the single
        reference assignment that publishes it, and in-flight batches
        keep the old state object, so every response comes wholly from
        the pre- or the post-swap model.  The cache is cleared (the
        generation bump alone already makes old entries unreachable).
        """
        if isinstance(source, (str, os.PathLike)):
            from repro.api import Recommender

            source = Recommender.load(source, mmap_mode=mmap_mode)
        if not getattr(source, "is_fitted", False):
            raise ValueError("hot_swap needs a fitted recommender or checkpoint")
        with self._mutate_lock:
            self._rec = source
            gen = self._install_state(self._state.generation + 1)
            self.clear_cache()
        self.stats.bump(swaps=1)
        if is_enabled():
            obs_metrics.inc("service.swaps")
        return gen

    def _build_state(self, generation: int) -> ModelState:
        exclude = self._rec._train_csr if self.exclude_seen else None
        engine = TopNEngine.from_model(self._rec.model, **self._engine_kwargs)
        if isinstance(exclude, CSRMatrix):
            engine.attach_exclusion(exclude)  # pre-warm the sorted keys
        return ModelState(generation=generation, engine=engine, exclude=exclude)

    def _install_state(self, generation: int) -> int:
        state = self._build_state(generation)
        self._state = state  # the atomic swap point
        if is_enabled():
            obs_metrics.set_gauge("service.generation", generation)
        return generation


class ServiceEndpoint:
    """Stdlib HTTP front of a :class:`RecommendService`.

    ``GET /recommend?user=U&n=N`` answers through the service's request
    loop (coalescing and cache included); ``/metrics`` serves the obs
    registry in Prometheus text format, with ``?window=1`` swapping the
    quantile summaries for delta-since-last-scrape windows; ``/healthz``
    and ``/stats`` are JSON.  Same lifecycle as
    :class:`repro.obs.endpoint.MetricsEndpoint` (daemon thread,
    ``port=0`` = ephemeral).
    """

    def __init__(
        self,
        service: RecommendService,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        default_n: int = 10,
        timeout: float = 30.0,
    ):
        self.service = service
        self.registry = registry or obs_metrics.get_registry()
        self.host = host
        self.default_n = int(default_n)
        self.timeout = float(timeout)
        self._requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    def url(self, path: str = "/recommend") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ServiceEndpoint":
        if self._server is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                endpoint._handle(self)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # request logs do not belong on the service's stderr

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
        self._started_at = None

    def __enter__(self) -> "ServiceEndpoint":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        path = parsed.path
        params = parse_qs(parsed.query)
        if path == "/recommend":
            self._handle_recommend(request, params)
        elif path == "/metrics":
            windowed = params.get("window", ["0"])[0] in ("1", "true", "yes")
            source = (
                self.registry.window_snapshot() if windowed else self.registry
            )
            body = render_prometheus(source).encode("utf-8")
            self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            self._respond_json(request, 200, {
                "status": "ok" if self.service.running else "stopped",
                "pid": os.getpid(),
                "uptime_seconds": round(uptime, 3),
                "generation": self.service.generation,
                "cache_entries": self.service.cache_entries(),
            })
        elif path == "/stats":
            self._respond_json(request, 200, self.service.stats.snapshot())
        else:
            self._respond_json(request, 404, {
                "status": "not found", "path": path,
                "endpoints": ["/recommend", "/metrics", "/healthz", "/stats"],
            })

    def _handle_recommend(
        self, request: BaseHTTPRequestHandler, params: dict
    ) -> None:
        try:
            user = int(params["user"][0])
            n = int(params.get("n", [self.default_n])[0])
        except (KeyError, ValueError, IndexError):
            self._respond_json(request, 400, {
                "status": "bad request",
                "error": "usage: /recommend?user=<int>[&n=<int>]",
            })
            return
        try:
            res = self.service.submit(user, n).result(self.timeout)
        except IndexError as exc:
            self._respond_json(request, 404, {
                "status": "unknown user", "error": str(exc)})
            return
        except (ValueError, RuntimeError) as exc:
            self._respond_json(request, 400, {
                "status": "bad request", "error": str(exc)})
            return
        self._respond_json(request, 200, {
            "user": res.user,
            "n": res.n,
            "items": [int(i) for i, _ in res.recommendations],
            "scores": [float(s) for _, s in res.recommendations],
            "generation": res.generation,
            "cached": res.cached,
        })

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, code: int, ctype: str, body: bytes
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", ctype)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def _respond_json(
        self, request: BaseHTTPRequestHandler, code: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._respond(request, code, "application/json; charset=utf-8", body)
