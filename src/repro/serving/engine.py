"""Tiled, memory-bounded batched top-N scoring — the query-side analogue
of the paper's local-memory staging.

Training (PRs 2–3) bounds the working set of every compute unit: rows
are batched by degree, tiles respect an nnz budget, registers hold one
k-strip.  Serving previously did the opposite — ``recommend_top_n_batch``
materialized a dense ``(U, n)`` score matrix and masked seen items in a
per-user Python loop.  This engine applies the same discipline to the
query path:

* **Item tiles.**  A user block is scored against the catalog one item
  tile at a time; the tile width is derived from a *bytes budget* for
  the score buffer (``tile_bytes``, the serving analogue of assembly's
  ``tile_nnz``), so peak scoring scratch is ``O(block · tile)`` instead
  of ``O(U · n)``.
* **Streaming merge.**  Each tile's per-user top-N candidates are merged
  against the running candidates carried from earlier tiles; the engine
  never holds more than ``(block, tile)`` scores plus ``(block, 2N)``
  merge candidates.
* **Vectorized exclusion.**  Seen items come straight from the CSR
  ``row_ptr``/``col_idx`` arrays: one ``repeat`` builds the (user-row,
  item) pairs for the whole block, and each tile masks its column range
  with a single boolean slice — no per-user Python loop.
* **Deterministic ties.**  Candidates are ordered by ``(score desc,
  item id asc)`` — a total order, so the tiled result is *identical*
  to a naive full-sort reference for every tile size, including exact
  score ties and all-tied (empty-profile) users.
* **Selectable precision.**  Scores can be computed in float32 (2x the
  effective memory bandwidth, the paper's single-precision kernels) or
  float64 (bit-compatible with the training factors).

Knob resolution mirrors the assembly/solver subsystems: explicit
argument > :func:`configure_serving` (CLI) > ``REPRO_SERVE_*``
environment > built-in defaults; ``"auto"`` defers to the empirical
selector in :mod:`repro.autotune.serving`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix

__all__ = [
    "PAD_ITEM",
    "DEFAULT_TILE_BYTES",
    "DEFAULT_USER_BLOCK",
    "SERVE_DTYPES",
    "TopNResult",
    "TopNEngine",
    "topn_from_scores",
    "configure_serving",
    "serving_defaults",
]

#: Item id used to pad result rows when a user has fewer than N
#: recommendable items.  Padded slots carry a score of ``-inf``.
PAD_ITEM = -1

#: Default score-buffer budget per user block (bytes).  8 MB holds a
#: 1024-user x 1024-item float64 tile — L2/L3-resident on current CPUs,
#: versus the ~180 MB dense matrix a full ML-1M batch used to build.
DEFAULT_TILE_BYTES = 8 << 20

#: Default number of users scored per block.
DEFAULT_USER_BLOCK = 1024

SERVE_DTYPES = {"float32": np.float32, "float64": np.float64}

_ENV_TILE = "REPRO_SERVE_TILE_BYTES"
_ENV_DTYPE = "REPRO_SERVE_DTYPE"
_ENV_BLOCK = "REPRO_SERVE_USER_BLOCK"

# Process-wide defaults installed by configure_serving (CLI flags land
# here).  ``None`` falls through to the environment, then the built-ins.
_CONFIGURED: dict[str, object | None] = {
    "tile_bytes": None,
    "dtype": None,
    "user_block": None,
}


def _validate_tile_bytes(tile_bytes: object) -> object:
    if tile_bytes == "auto":
        return "auto"
    tile_bytes = int(tile_bytes)
    if tile_bytes < 1:
        raise ValueError("tile_bytes must be >= 1")
    return tile_bytes


def _validate_dtype(dtype: object) -> object:
    if dtype == "auto":
        return "auto"
    if isinstance(dtype, str):
        if dtype not in SERVE_DTYPES:
            raise ValueError(
                f"serving dtype must be one of {tuple(SERVE_DTYPES)} or 'auto', "
                f"got {dtype!r}"
            )
        return dtype
    dt = np.dtype(dtype)
    for name, np_dtype in SERVE_DTYPES.items():
        if dt == np_dtype:
            return name
    raise ValueError(f"serving dtype must be float32 or float64, got {dt}")


def _validate_block(user_block: object) -> int:
    user_block = int(user_block)
    if user_block < 1:
        raise ValueError("user_block must be >= 1")
    return user_block


def configure_serving(
    tile_bytes: int | str | None = None,
    dtype: object | None = None,
    user_block: int | None = None,
) -> None:
    """Install process-wide serving defaults (``None`` resets a knob)."""
    _CONFIGURED["tile_bytes"] = (
        None if tile_bytes is None else _validate_tile_bytes(tile_bytes)
    )
    _CONFIGURED["dtype"] = None if dtype is None else _validate_dtype(dtype)
    _CONFIGURED["user_block"] = (
        None if user_block is None else _validate_block(user_block)
    )


def serving_defaults() -> tuple[object, object, int]:
    """Effective ``(tile_bytes, dtype, user_block)`` before autotuning.

    Either of the first two may be the string ``"auto"``, meaning the
    engine will consult :func:`repro.autotune.serving.select_serving`.
    """
    tile_bytes: object = _CONFIGURED["tile_bytes"]
    if tile_bytes is None:
        env = os.environ.get(_ENV_TILE)
        tile_bytes = _validate_tile_bytes(env) if env else DEFAULT_TILE_BYTES
    dtype: object = _CONFIGURED["dtype"]
    if dtype is None:
        env = os.environ.get(_ENV_DTYPE)
        dtype = _validate_dtype(env) if env else "float64"
    user_block = _CONFIGURED["user_block"]
    if user_block is None:
        env = os.environ.get(_ENV_BLOCK)
        user_block = _validate_block(env) if env else DEFAULT_USER_BLOCK
    return tile_bytes, dtype, int(user_block)


@dataclass(frozen=True)
class TopNResult:
    """Batched top-N recommendations, one padded row per queried user.

    ``items[u]`` holds item ids in ``(score desc, item id asc)`` order;
    when a user has fewer than N recommendable items the trailing slots
    are :data:`PAD_ITEM` with a score of ``-inf`` (the *padded* half of
    the contract — the single-user API returns the same items as a
    *truncated* list).
    """

    items: np.ndarray  # (U, N) int64, PAD_ITEM-padded
    scores: np.ndarray  # (U, N) float64, -inf-padded

    @property
    def lengths(self) -> np.ndarray:
        """Recommendable-item count per user (valid prefix length)."""
        return (self.items != PAD_ITEM).sum(axis=1)

    def row(self, u: int) -> list[tuple[int, float]]:
        """Row ``u`` as a truncated ``[(item, score), ...]`` list."""
        keep = self.items[u] != PAD_ITEM
        return [
            (int(i), float(s))
            for i, s in zip(self.items[u][keep], self.scores[u][keep])
        ]


def _merge_topn(
    ids: np.ndarray, scores: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``n`` of ``(ids, scores)`` by ``(score desc, id asc)``.

    ``ids``/``scores`` are ``(B, m)`` with small ``m`` (at most carried-N
    plus one tile's survivors), so a full lexsort is cheap; the composite
    key makes the order total, which is what keeps the streaming merge
    bit-identical to a full sort under exact score ties.
    """
    B, m = ids.shape
    rows = np.repeat(np.arange(B), m)
    order = np.lexsort((ids.ravel(), -scores.ravel(), rows))
    order = order.reshape(B, m) - (np.arange(B) * m)[:, None]
    take = order[:, : min(n, m)]
    return (
        np.take_along_axis(ids, take, axis=1),
        np.take_along_axis(scores, take, axis=1),
    )


def _tile_survivors(
    S: np.ndarray, t0: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-row top-``n`` of one scored tile, ids ascending.

    Selection is by score threshold: every entry strictly above the
    row's n-th largest score survives, and exact ties *at* the threshold
    are filled lowest-id-first (columns ascend within a tile, so a
    cumulative-sum cutoff over the tie mask picks the smallest ids).
    This is O(B·w) — no sort over the tile — yet agrees exactly with the
    ``(score desc, id asc)`` total order a full sort would produce.
    """
    B, w = S.shape
    if w <= n:
        ids = np.broadcast_to(np.arange(t0, t0 + w, dtype=np.int64), (B, w))
        return ids, S
    cut = np.partition(S, w - n, axis=1)[:, w - n, None]
    above = S > cut
    need = n - np.count_nonzero(above, axis=1)
    bad = np.flatnonzero(need)
    if bad.size:
        # Ties at the threshold (exact duplicates, or -inf filler rows):
        # fill lowest-id-first — but only on the rows that need it, so
        # one tied row doesn't cost extra passes over the whole block.
        tied = S[bad] == cut[bad]
        above[bad] |= tied & (np.cumsum(tied, axis=1) <= need[bad, None])
    cols = np.nonzero(above)[1].reshape(B, n)
    return cols + t0, np.take_along_axis(S, cols, axis=1)


class TopNEngine:
    """Batched top-N recommendation over fixed factors ``(X, Y)``.

    One engine serves many queries: the item factors are cast to the
    scoring dtype once at construction, and tile geometry is resolved
    once (consulting the empirical autotuner when a knob is ``"auto"``).
    User blocks are independent, so multi-worker engines shard them
    across :class:`repro.parallel.SweepExecutor`'s thread pool (the
    GEMMs drop the GIL).
    """

    def __init__(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        *,
        tile_bytes: int | str | None = None,
        dtype: object | None = None,
        user_block: int | None = None,
        workers: int | str | None = None,
    ) -> None:
        X = np.asarray(X)
        Y = np.asarray(Y)
        if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != Y.shape[1]:
            raise ValueError("X (m, k) and Y (n, k) must share a factor dim")
        cfg_tile, cfg_dtype, cfg_block = serving_defaults()
        tile_bytes = cfg_tile if tile_bytes is None else _validate_tile_bytes(tile_bytes)
        dtype = cfg_dtype if dtype is None else _validate_dtype(dtype)
        if tile_bytes == "auto" or dtype == "auto":
            from repro.autotune.serving import select_serving

            decision = select_serving(Y.shape[0], Y.shape[1])
            if tile_bytes == "auto":
                tile_bytes = decision.tile_bytes
            if dtype == "auto":
                dtype = decision.dtype
        self.tile_bytes = int(tile_bytes)
        self.dtype_name = str(dtype)
        self.dtype = SERVE_DTYPES[self.dtype_name]
        self.user_block = _validate_block(
            cfg_block if user_block is None else user_block
        )
        self._X = np.ascontiguousarray(X, dtype=self.dtype)
        self._Y = np.ascontiguousarray(Y, dtype=self.dtype)
        from repro.parallel import resolve_workers

        self.workers = resolve_workers(workers)
        self.peak_tile_bytes = 0
        # Single-slot exclusion-key cache: steady-state serving queries
        # the same CSR every request, so the sorted (user·n + item) key
        # array is built once and reused until the exclusion changes
        # (identity-keyed; the strong reference keeps ids unambiguous).
        self._excl_cache: tuple[CSRMatrix, np.ndarray, type] | None = None

    @classmethod
    def from_model(cls, model, **kwargs) -> "TopNEngine":
        """Engine over a trained :class:`~repro.core.als.ALSModel`."""
        return cls(model.X, model.Y, **kwargs)

    @property
    def n_items(self) -> int:
        return self._Y.shape[0]

    @property
    def n_users(self) -> int:
        return self._X.shape[0]

    def tile_items(self, block: int | None = None) -> int:
        """Item-tile width for a ``block``-user score buffer.

        The budget bounds the ``(block, tile)`` score buffer — the
        serving analogue of the assembly's ``tile_nnz`` bound on
        gathered non-zeros.
        """
        block = self.user_block if block is None else max(1, int(block))
        per_row = block * self.dtype().itemsize
        return max(1, min(self.n_items, self.tile_bytes // per_row))

    # ------------------------------------------------------------------
    # exclusion-key cache
    # ------------------------------------------------------------------
    def attach_exclusion(self, exclude: CSRMatrix | None) -> None:
        """Pre-build (or drop, with ``None``) the cached exclusion keys.

        ``query()`` builds the cache lazily on first use, so this is an
        optional warm-up/invalidation hook for long-lived services: call
        it after fold-in or a model hot-swap hands the engine a new
        exclusion matrix, and the first post-swap request pays nothing.
        """
        self._excl_cache = None
        if isinstance(exclude, CSRMatrix):
            self._exclusion_keys(exclude)

    def _exclusion_keys(
        self, exclude: CSRMatrix
    ) -> tuple[np.ndarray, type]:
        """Sorted global ``user·n_items + item`` keys of the exclusion CSR.

        One flat array over *all* exclusion rows replaces the per-query
        ``_seen_pairs`` repeat+gather: each user's entries occupy the
        contiguous slice ``row_ptr[u]:row_ptr[u+1]`` and keys ascend
        globally (columns ascend within a CSR row), so both the
        bootstrap prefix and the per-tile candidate filter reduce to
        ``searchsorted`` against this one array.  Cached by identity —
        rebuilding is O(nnz), reuse is free.
        """
        cached = self._excl_cache
        if cached is not None and cached[0] is exclude:
            return cached[1], cached[2]
        kd: type = np.int64
        if exclude.nrows * self.n_items < 2**31:
            kd = np.int32  # halves the binary-search traffic
        keys = exclude.expanded_rows().astype(kd) * kd(self.n_items)
        keys += exclude.col_idx.astype(kd)
        if keys.size > 1 and np.any(keys[:-1] >= keys[1:]):
            # Directly constructed CSRs may hold unsorted columns within
            # a row; from_coo/take_rows never do.  Sort once at build.
            keys.sort()
        keys.setflags(write=False)
        self._excl_cache = (exclude, keys, kd)
        return keys, kd

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        users: np.ndarray,
        n: int = 10,
        exclude: CSRMatrix | None = None,
    ) -> TopNResult:
        """Top-``n`` items for each user id in ``users``.

        ``n`` is clamped to the catalog size; users with fewer than
        ``n`` recommendable items get :data:`PAD_ITEM`-padded rows.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-D index array")
        if n <= 0:
            raise ValueError("n must be positive")
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise IndexError(f"user index out of range for {self.n_users} users")
        if exclude is not None and exclude.shape[1] != self.n_items:
            raise ValueError("exclude matrix item dimension mismatch")
        n = min(int(n), self.n_items)
        enabled = is_enabled()
        t_start = perf_counter()
        with span(
            "serve.topn",
            users=int(users.size),
            n=n,
            tile_bytes=self.tile_bytes,
            dtype=self.dtype_name,
            workers=self.workers,
        ):
            blocks = [
                (lo, min(lo + self.user_block, users.size))
                for lo in range(0, users.size, self.user_block)
            ]
            items = np.full((users.size, n), PAD_ITEM, dtype=np.int64)
            scores = np.full((users.size, n), -np.inf, dtype=np.float64)

            def run_block(bounds: tuple[int, int]) -> None:
                lo, hi = bounds
                block_users = users[lo:hi]
                b_items, b_scores = self._block_topn(
                    self._X[block_users], n, block_users, exclude
                )
                items[lo:hi] = b_items
                scores[lo:hi] = b_scores

            if self.workers > 1 and len(blocks) > 1:
                from repro.parallel import SweepExecutor

                with SweepExecutor(self.workers) as executor:
                    executor.map(run_block, blocks)
            else:
                for bounds in blocks:
                    run_block(bounds)
        if enabled:
            seconds = perf_counter() - t_start
            obs_metrics.inc("serve.topn.queries")
            obs_metrics.inc("serve.topn.users", float(users.size))
            obs_metrics.set_gauge("serve.peak_tile_bytes", self.peak_tile_bytes)
            # Per-query latency goes into both histogram flavors: the
            # summary for BENCH reports, the quantile sketch for the
            # p50/p95/p99 a metrics endpoint scrape reports.
            obs_metrics.observe_latency("serve.topn.seconds", seconds)
            if seconds > 0:
                ups = users.size / seconds
                # The gauge is last-write-wins; the histogram keeps the
                # whole multi-batch distribution (min/mean/max).
                obs_metrics.set_gauge("serve.users_per_sec", ups)
                obs_metrics.observe("serve.users_per_sec", ups)
        return TopNResult(items=items, scores=scores)

    def query_scores(
        self,
        S: np.ndarray,
        n: int = 10,
        users: np.ndarray | None = None,
        exclude: CSRMatrix | None = None,
    ) -> TopNResult:
        """Top-``n`` over an externally computed dense score block.

        The legacy ``score_matrix_fn`` path of ``evaluate_ranking`` lands
        here: scores are already materialized, but exclusion and
        selection still run through the engine's vectorized, tie-
        deterministic machinery (tiled, so selection scratch stays
        bounded even for a full-catalog block).
        """
        return topn_from_scores(
            S, n=n, users=users, exclude=exclude, tile_bytes=self.tile_bytes
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _block_topn(
        self,
        Xb: np.ndarray,
        n: int,
        block_users: np.ndarray,
        exclude: CSRMatrix | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        B = Xb.shape[0]
        tile = self.tile_items(B)
        # Bootstrap on a short leading slice: exact selection over the
        # whole slice seeds the per-user running top-N.  The slice is
        # deliberately narrow — exact selection costs several passes per
        # element, so paying it on O(n) items instead of a full tile is
        # what lets every later tile get away with a single comparison.
        w0 = min(self.n_items, tile, max(64, 4 * n))
        # Exclusion comes in two flavors.  A CSRMatrix uses the cached
        # global sorted keys (built once per exclusion matrix, reused
        # across queries): bootstrap entries are the per-user key prefix
        # below ``u·n_items + w0``, recovered with one vectorized
        # searchsorted, and candidate keys are offsets from a per-user
        # base.  Any other row-sliceable exclusion (e.g. the out-of-core
        # ShardedCSR, whose nnz must not be materialized in RAM) takes
        # the legacy per-block ``_seen_pairs`` gather.  Both paths mask
        # and filter the identical (user, item) pairs — results are
        # bitwise the same.
        seen_keys = None
        base_keys = None  # per-block-row key base (cached-global path)
        key_dtype: type = np.int64
        boot_rows = boot_cols = None
        if exclude is not None:
            if block_users.size and (
                block_users.min() < 0 or block_users.max() >= exclude.nrows
            ):
                raise IndexError("exclusion row out of range")
            if isinstance(exclude, CSRMatrix):
                keys_all, kd = self._exclusion_keys(exclude)
                if keys_all.size:
                    key_dtype = kd
                    seen_keys = keys_all
                    base_keys = block_users.astype(kd) * kd(self.n_items)
                    starts = exclude.row_ptr[block_users]
                    ends = np.searchsorted(keys_all, base_keys + kd(w0))
                    lengths = ends - starts
                    total = int(lengths.sum())
                    if total:
                        boot_rows = np.repeat(
                            np.arange(B, dtype=np.int64), lengths
                        )
                        offsets = np.arange(total, dtype=np.int64) - np.repeat(
                            np.cumsum(lengths) - lengths, lengths
                        )
                        boot_cols = exclude.col_idx[
                            np.repeat(starts, lengths) + offsets
                        ]
            else:
                excl_rows, excl_cols = _seen_pairs(exclude, block_users)
                if excl_rows.size:
                    in_boot = excl_cols < w0
                    boot_rows = excl_rows[in_boot]
                    boot_cols = excl_cols[in_boot]
                    if B * self.n_items < 2**31:
                        key_dtype = np.int32  # halves binary-search traffic
                    seen_keys = (
                        excl_rows.astype(key_dtype) * key_dtype(self.n_items)
                        + excl_cols.astype(key_dtype)
                    )
        S0 = Xb @ self._Y[:w0].T
        if boot_rows is not None:
            S0[boot_rows, boot_cols] = -np.inf
        ids, vals = _tile_survivors(S0, 0, n)
        del S0
        if ids.shape[1] < n:  # catalog slice shorter than n: pad out
            pad = n - ids.shape[1]
            ids = np.concatenate(
                [ids, np.full((B, pad), PAD_ITEM, dtype=np.int64)], axis=1
            )
            vals = np.concatenate(
                [vals, np.full((B, pad), -np.inf, dtype=self.dtype)], axis=1
            )
        # Survivors come out ids-ascending; one stable small-width sort
        # establishes the carried (score desc, id asc) invariant.
        order = np.argsort(-vals, axis=1, kind="stable")
        best_ids = np.take_along_axis(ids, order, axis=1)
        best_scores = np.take_along_axis(vals, order, axis=1)
        # Past the bootstrap, seen items are *not* masked in the score
        # tiles.  Candidates are rare (they must beat the running
        # threshold), so it is far cheaper to drop seen candidates by
        # binary-searching their (row, item) keys against the sorted
        # seen-pair keys (cached-global or per-block, built above) than
        # to scatter -inf over every seen entry of every tile.
        # Per-user running n-th-best score: past the bootstrap, an item
        # can only enter the top-N by *strictly* beating it — carried
        # candidates always have smaller ids (tiles ascend), so under the
        # (score desc, id asc) order an exact tie loses.  That makes one
        # `S > thresh` comparison the whole per-tile filter.
        thresh = best_scores[:, -1].copy()
        score_buf = np.empty((B, tile), dtype=self.dtype)
        mask_buf = np.empty((B, tile), dtype=bool)
        peak = score_buf.nbytes + mask_buf.nbytes
        # Tiles grow geometrically from the bootstrap width up to the
        # budgeted width: the filter threshold is frozen within a tile,
        # so keeping each tile no wider than the prefix it follows bounds
        # the expected candidate spill per tile near n instead of
        # tile/prefix · n (the small-bootstrap blowup).
        t0 = w0
        pend: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pend_hits = 0
        while t0 < self.n_items:
            w = min(tile, t0, self.n_items - t0)
            t1 = t0 + w
            S = np.matmul(Xb, self._Y[t0:t1].T, out=score_buf[:, :w])
            cand = np.greater(S, thresh[:, None], out=mask_buf[:, :w])
            hits = np.flatnonzero(cand.ravel())
            if hits.size:
                if w & (w - 1) == 0:  # power-of-two tile: shift, not divide
                    rows = hits >> (w.bit_length() - 1)
                    cols = hits & (w - 1)
                else:
                    rows, cols = np.divmod(hits, w)
                ids = cols + t0
                if seen_keys is not None:
                    if base_keys is not None:
                        keys = base_keys[rows] + ids.astype(key_dtype)
                    else:
                        keys = rows.astype(key_dtype) * key_dtype(
                            self.n_items
                        ) + ids.astype(key_dtype)
                    pos = np.searchsorted(seen_keys, keys)
                    np.minimum(pos, seen_keys.size - 1, out=pos)
                    unseen = seen_keys[pos] != keys
                    if not unseen.all():
                        rows = rows[unseen]
                        cols = cols[unseen]
                        ids = ids[unseen]
                if rows.size:
                    pend.append((rows, ids, S[rows, cols]))
                    pend_hits += rows.size
            # Merging has a fixed per-call cost, so sparse late tiles are
            # batched until enough candidates pend (~1 per user).  While
            # tiles are still growing the merge runs every tile — there a
            # fresh threshold prunes the most — and skipping a merge
            # there would also break the ids-ascending invariant (the
            # last, remainder-width tile only *looks* like a growing one).
            growing = w < tile and t1 < self.n_items
            if pend and (growing or pend_hits >= B or t1 >= self.n_items):
                if len(pend) == 1:
                    rows, ids, vals = pend[0]
                else:
                    # Stable sort restores row-major order across tiles;
                    # within a row, earlier tiles (smaller ids) stay first.
                    rows = np.concatenate([p[0] for p in pend])
                    ids = np.concatenate([p[1] for p in pend])
                    vals = np.concatenate([p[2] for p in pend])
                    order = np.argsort(rows, kind="stable")
                    rows = rows[order]
                    ids = ids[order]
                    vals = vals[order]
                _merge_streaming(best_ids, best_scores, rows, ids, vals, n)
                np.copyto(thresh, best_scores[:, -1])
                pend = []
                pend_hits = 0
            t0 = t1
        if peak > self.peak_tile_bytes:
            self.peak_tile_bytes = peak
        best_ids = best_ids.copy()
        best_ids[~np.isfinite(best_scores)] = PAD_ITEM
        return best_ids, best_scores.astype(np.float64)


def _merge_streaming(
    best_ids: np.ndarray,
    best_scores: np.ndarray,
    rows: np.ndarray,
    ids: np.ndarray,
    vals: np.ndarray,
    n: int,
) -> None:
    """Fold threshold-passing ``(row, id, val)`` entries into the carried
    top-N, in place.

    Only affected rows are touched.  Each affected row's ``n`` carried
    candidates and its new entries are scattered into one dense
    ``(affected, n + max_hits)`` scratch block, laid out so that *column
    index encodes the tie-break order*: carried candidates (columns
    ``< n``) are already sorted by ``(score desc, id asc)`` and always
    have smaller ids than the incoming tile's entries (tiles ascend),
    and new entries land in ascending-id order after them.  Exact top-n
    selection by score threshold with lowest-column tie fill (the same
    O(rows·width) pass as :func:`_tile_survivors`) is then identical to
    the ``(score desc, id asc)`` total order — no per-candidate lexsort.

    ``rows`` must be sorted ascending with ids ascending within a row
    (the row-major order ``flatnonzero`` produces).

    Skewed hit lists (one row with far more hits than the rest) are
    merged in row-prefix chunks: the dense scratch width then tracks the
    typical row instead of the outlier, and between chunks the tail is
    re-filtered against the just-tightened thresholds — an outlier row's
    later hits usually stop qualifying once its first chunk lands.
    """
    cap = max(16, n)
    while rows.size:
        # ``rows`` is sorted, so segment structure falls out of one
        # boundary scan — no np.unique (which would re-sort the list).
        boundary = np.empty(rows.size, dtype=bool)
        boundary[0] = True
        np.not_equal(rows[1:], rows[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, rows.size))
        mx = int(counts.max())
        tail = None
        if mx > 2 * cap:
            # np.repeat beats cumsum(boundary) for the per-hit segment
            # offset — no serial dependency chain over the hit list.
            pos = np.arange(rows.size, dtype=np.int64) - np.repeat(starts, counts)
            head = pos < cap
            tail = (rows[~head], ids[~head], vals[~head])
            rows, ids, vals = rows[head], ids[head], vals[head]
            boundary = np.empty(rows.size, dtype=bool)
            boundary[0] = True
            np.not_equal(rows[1:], rows[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            counts = np.diff(np.append(starts, rows.size))
            mx = cap
        aff = rows[starts]
        A = aff.size
        inv = np.repeat(np.arange(A, dtype=np.int64), counts)
        width = n + mx
        dense = np.full((A, width), -np.inf, dtype=best_scores.dtype)
        dense[:, :n] = best_scores[aff]
        pos = np.arange(rows.size, dtype=np.int64) - np.repeat(starts, counts)
        dense[inv, n + pos] = vals
        cut = np.partition(dense, width - n, axis=1)[:, width - n, None]
        above = dense > cut
        need = n - np.count_nonzero(above, axis=1)
        bad = np.flatnonzero(need)
        if bad.size:
            # Ties at the threshold: fill lowest-column-first, repairing
            # only the rows that need it (a lone -inf-padded row would
            # otherwise drag every merge through the full tie machinery).
            tied = dense[bad] == cut[bad]
            above[bad] |= tied & (np.cumsum(tied, axis=1) <= need[bad, None])
        cols = np.nonzero(above)[1].reshape(A, n)
        sel_scores = np.take_along_axis(dense, cols, axis=1)
        # Ids are reconstructed from the column index instead of being
        # scattered through a second dense block: columns ``< n`` name a
        # carried slot, later columns index the row's slice of ``ids``.
        new_pos = cols - n
        is_new = new_pos >= 0
        sel_ids = np.where(
            is_new,
            ids[starts[:, None] + np.where(is_new, new_pos, 0)],
            best_ids[aff[:, None], np.where(is_new, 0, cols)],
        )
        # The n survivors come out in column order; restore the carried
        # (score desc, id asc) invariant with one stable small-width
        # sort — stability keeps column order (= ascending ids) on ties.
        order = np.argsort(-sel_scores, axis=1, kind="stable")
        best_scores[aff] = np.take_along_axis(sel_scores, order, axis=1)
        best_ids[aff] = np.take_along_axis(sel_ids, order, axis=1)
        if tail is None:
            return
        t_rows, t_ids, t_vals = tail
        keep = t_vals > best_scores[t_rows, -1]
        rows, ids, vals = t_rows[keep], t_ids[keep], t_vals[keep]


def topn_from_scores(
    S: np.ndarray,
    n: int = 10,
    users: np.ndarray | None = None,
    exclude: CSRMatrix | None = None,
    tile_bytes: int | None = None,
) -> TopNResult:
    """Tie-deterministic top-``n`` over a dense ``(users, items)`` block.

    The engine's selection machinery detached from any factor matrices:
    exclusion is applied vectorized from the CSR structure (``users``
    maps block rows to exclusion rows) and selection runs over column
    tiles sized by ``tile_bytes`` so scratch stays bounded even for a
    full-catalog block.
    """
    S = np.array(S, dtype=np.float64)
    if S.ndim != 2:
        raise ValueError("S must be a (users, items) score block")
    if n <= 0:
        raise ValueError("n must be positive")
    n = min(int(n), S.shape[1])
    if tile_bytes is None:
        cfg_tile, _, _ = serving_defaults()
        tile_bytes = DEFAULT_TILE_BYTES if cfg_tile == "auto" else int(cfg_tile)
    if exclude is not None:
        if users is None:
            raise ValueError("users required to exclude seen items")
        users = np.asarray(users, dtype=np.int64)
        rows, cols = _seen_pairs(exclude, users)
        S[rows, cols] = -np.inf
    B = S.shape[0]
    tile = max(1, min(S.shape[1], int(tile_bytes) // max(1, B * S.itemsize)))
    best_ids = np.full((B, n), PAD_ITEM, dtype=np.int64)
    best_scores = np.full((B, n), -np.inf, dtype=np.float64)
    for t0 in range(0, S.shape[1], tile):
        ids, vals = _tile_survivors(S[:, t0 : t0 + tile], t0, n)
        best_ids, best_scores = _merge_topn(
            np.concatenate([best_ids, ids], axis=1),
            np.concatenate([best_scores, vals], axis=1),
            n,
        )
    best_ids = best_ids.copy()
    best_ids[~np.isfinite(best_scores)] = PAD_ITEM
    return TopNResult(items=best_ids, scores=best_scores)


def _seen_pairs(
    exclude: CSRMatrix, users: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(block_row, item)`` pairs of every seen entry, in one pass.

    Built straight from the CSR ``row_ptr``/``col_idx`` arrays: block
    rows are ``repeat``-expanded by each user's degree and the item ids
    are gathered with one fancy index — the vectorized replacement for
    the old per-user ``row_slice`` loop.
    """
    if users.size and (users.min() < 0 or users.max() >= exclude.nrows):
        raise IndexError("exclusion row out of range")
    starts = exclude.row_ptr[users]
    lengths = exclude.row_ptr[users + 1] - starts
    total = int(lengths.sum())
    rows = np.repeat(np.arange(users.size, dtype=np.int64), lengths)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    cols = exclude.col_idx[np.repeat(starts, lengths) + offsets]
    return rows, cols
