"""Incremental fold-in: new users/items without a full retrain.

A new user with observed ratings ``r`` over the fixed item factors ``Y``
is exactly one ridge system

    x = (Y_Ωᵀ Y_Ω + λI)⁻¹ Y_Ωᵀ r

— the same k×k normal equations every ALS half-sweep solves per row.
Fold-in therefore reuses the whole training substrate unchanged: the
new rows' equations are assembled through the binned/tiled S1/S2
kernels (:func:`repro.kernels.fastpath.sweep_occupied`) and solved as
one batched S3 call through the solver registry.  Nothing is
approximated, and nothing existing is touched: the basis factors stay
fixed and only the new rows are computed.

Because degree bins come from a fixed geometric grid (a row's padded
width is a function of its own degree, never of which rows share the
batch) and the batched S3 solvers are per-system independent, the
folded factors are **bitwise identical** to the corresponding rows of a
fresh serial half-sweep over the augmented matrix — the invariant the
parallel sweep executor already relies on, now carried to serving time.
The three trainers map directly:

* explicit ALS — uniform ridge ``λI``;
* ALS-WR        — per-row ridge ``λ·|Ω|·I`` (``weighted=True``);
* implicit      — Hu–Koren confidence weights with the shared dense
  ``YᵀY`` broadcast onto every system (``base_gram``), computed here
  exactly as :func:`repro.core.implicit.implicit_half_sweep` computes it
  so the parity is bitwise, not just numerical.

Item fold-in is the transpose of the same statement: a new item's
factors solve against the fixed user factors ``X``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.fastpath import sweep_occupied
from repro.obs.spans import span
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["FOLDIN_ALGORITHMS", "fold_in_factors", "as_new_rows_csr"]

#: Algorithms fold-in understands — the same names the trainers use.
FOLDIN_ALGORITHMS = ("als", "als-wr", "implicit")


def as_new_rows_csr(
    ratings: COOMatrix | CSRMatrix, n_cols: int
) -> CSRMatrix:
    """Coerce a fold-in payload to a CSR of new rows over ``n_cols``.

    Rows index the *new* entities (0..h-1); columns must live in the
    existing basis dimension.  A COO payload may understate the column
    dimension (it only knows the columns it saw), so the shape is
    widened to ``n_cols`` here; overshooting it is an error — a new
    user cannot rate an item the model has no factors for.
    """
    if isinstance(ratings, CSRMatrix):
        if ratings.ncols > n_cols:
            raise ValueError(
                f"fold-in ratings reference {ratings.ncols} columns but the "
                f"model has only {n_cols}"
            )
        if ratings.ncols == n_cols:
            return ratings
        return CSRMatrix(
            (ratings.nrows, n_cols),
            ratings.value, ratings.col_idx, ratings.row_ptr,
        )
    if not isinstance(ratings, COOMatrix):
        raise TypeError(
            f"fold-in ratings must be COOMatrix or CSRMatrix, got "
            f"{type(ratings).__name__}"
        )
    if ratings.shape[1] > n_cols:
        raise ValueError(
            f"fold-in ratings reference {ratings.shape[1]} columns but the "
            f"model has only {n_cols}"
        )
    widened = COOMatrix(
        (ratings.shape[0], n_cols), ratings.row, ratings.col, ratings.value
    )
    return CSRMatrix.from_coo(widened)


def fold_in_factors(
    R_new: CSRMatrix,
    basis: np.ndarray,
    lam: float,
    algorithm: str = "als",
    alpha: float | None = None,
    *,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> np.ndarray:
    """Solve the new rows' k×k systems against a fixed factor basis.

    ``R_new`` holds one row per new entity over the basis' row space
    (items for user fold-in, users for item fold-in); ``basis`` is the
    fixed factor matrix (``Y`` resp. ``X``).  Returns the ``(h, k)``
    float64 factors; empty rows come back zero, matching a fresh
    half-sweep with no warm start.

    The result row for any new entity is bitwise-equal to the same row
    of a serial float64 half-sweep over the augmented matrix — see the
    module docstring for why batching composition cannot change it.
    """
    if algorithm not in FOLDIN_ALGORITHMS:
        known = ", ".join(FOLDIN_ALGORITHMS)
        raise ValueError(f"unknown fold-in algorithm {algorithm!r}; known: {known}")
    basis = np.asarray(basis)
    if basis.ndim != 2:
        raise ValueError("basis must be a 2-D factor matrix")
    if R_new.ncols != basis.shape[0]:
        raise ValueError(
            f"fold-in ratings have {R_new.ncols} columns but the basis has "
            f"{basis.shape[0]} rows"
        )
    k = basis.shape[1]
    kw: dict = dict(
        solver=solver, assembly=assembly, tile_nnz=tile_nnz,
        compute_dtype=compute_dtype,
    )
    with span(
        "serve.fold_in", algorithm=algorithm, rows=R_new.nrows, nnz=R_new.nnz
    ):
        if algorithm == "implicit":
            if alpha is None or alpha <= 0:
                raise ValueError("implicit fold-in requires a positive alpha")
            # Mirror implicit_half_sweep exactly: contiguous float64 basis,
            # dense Gramian computed once — any other order of operations
            # would break the bitwise parity with a fresh half-sweep.
            Y = np.ascontiguousarray(basis, dtype=np.float64)
            YtY = Y.T @ Y
            rows, X_rows = sweep_occupied(
                R_new, Y, lam, implicit_alpha=float(alpha), base_gram=YtY, **kw
            )
        else:
            rows, X_rows = sweep_occupied(
                R_new, basis, lam, weighted=(algorithm == "als-wr"), **kw
            )
    X_new = np.zeros((R_new.nrows, k), dtype=np.float64)
    X_new[rows] = X_rows
    return X_new
