"""Query-time serving: tiled, memory-bounded batched top-N.

The serving counterpart of the training-side working-set discipline
(degree-binned assembly tiles, LAPACK batch solves): score user blocks
against the item catalog in byte-budgeted item tiles, carry a running
per-user top-N across tiles, and mask seen items vectorized from the
CSR structure.  See :mod:`repro.serving.engine` and ``docs/serving.md``.
"""

from repro.serving.engine import (
    DEFAULT_TILE_BYTES,
    DEFAULT_USER_BLOCK,
    PAD_ITEM,
    SERVE_DTYPES,
    TopNEngine,
    TopNResult,
    configure_serving,
    serving_defaults,
    topn_from_scores,
)

__all__ = [
    "DEFAULT_TILE_BYTES",
    "DEFAULT_USER_BLOCK",
    "PAD_ITEM",
    "SERVE_DTYPES",
    "TopNEngine",
    "TopNResult",
    "topn_from_scores",
    "configure_serving",
    "serving_defaults",
]
