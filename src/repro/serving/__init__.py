"""Query-time serving: tiled batched top-N, and the online service.

The serving counterpart of the training-side working-set discipline
(degree-binned assembly tiles, LAPACK batch solves): score user blocks
against the item catalog in byte-budgeted item tiles, carry a running
per-user top-N across tiles, and mask seen items vectorized from the
CSR structure (:mod:`repro.serving.engine`).  On top of the engine sit
the long-lived :class:`RecommendService` — micro-batch coalescing, LRU
result caching, incremental fold-in, atomic hot-swap
(:mod:`repro.serving.service`), the fold-in solver
(:mod:`repro.serving.foldin`) and the closed/open-loop load generators
(:mod:`repro.serving.loadgen`).  See ``docs/serving.md``.
"""

from repro.serving.engine import (
    DEFAULT_TILE_BYTES,
    DEFAULT_USER_BLOCK,
    PAD_ITEM,
    SERVE_DTYPES,
    TopNEngine,
    TopNResult,
    configure_serving,
    serving_defaults,
    topn_from_scores,
)
from repro.serving.foldin import (
    FOLDIN_ALGORITHMS,
    as_new_rows_csr,
    fold_in_factors,
)
from repro.serving.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serving.service import (
    ModelState,
    RecommendService,
    ServeResult,
    ServiceEndpoint,
    ServiceStats,
)

__all__ = [
    "DEFAULT_TILE_BYTES",
    "DEFAULT_USER_BLOCK",
    "PAD_ITEM",
    "SERVE_DTYPES",
    "TopNEngine",
    "TopNResult",
    "topn_from_scores",
    "configure_serving",
    "serving_defaults",
    "FOLDIN_ALGORITHMS",
    "as_new_rows_csr",
    "fold_in_factors",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "ModelState",
    "RecommendService",
    "ServeResult",
    "ServiceEndpoint",
    "ServiceStats",
]
