"""Build on-disk shard stores (see :mod:`repro.sparse.shards`).

Converting a ratings source into the packed two-orientation directory is
a counting-sort, done in bounded memory:

1. **Count** — stream the source once, accumulating per-row and
   per-column non-zero counts (O(m + n) ints).  Their cumulative sums
   are the two ``indptr`` arrays.
2. **Scatter (rows)** — stream the source again, writing each entry to
   its row's next free slot in the memory-mapped ``rows.indices`` /
   ``rows.values`` arrays (a per-row write cursor advances through the
   ``indptr`` layout).
3. **Fix up** — unless the source guarantees it, sort each row's
   entries by column in place (one budget-bounded row range at a time)
   so the store matches :meth:`CSRMatrix.from_coo`'s ``(row, col)``
   order bit for bit.  Duplicate ``(row, col)`` pairs are an error at
   this point — deduplication needs global knowledge the streaming
   passes deliberately don't keep.
4. **Derive (cols)** — stream the finished rows orientation in nnz
   order, counting-sort entries by column into ``cols.*``.  Entries
   arrive in ascending ``(row, col)`` order, and the stable scatter
   preserves arrival order within a column, so each column's entries
   end up in ascending row order — exactly what
   :meth:`CSCMatrix.from_csr` produces in RAM, which is what makes a
   sharded Y half-sweep bitwise-equal to the in-RAM one.

Sources: an in-RAM :class:`CSRMatrix`/:class:`COOMatrix` (whose arrays
are copied verbatim — the round-trip is exact), or a zero-argument
callable returning a fresh iterator of ``(rows, cols, values)`` chunks
(re-invoked once per pass; e.g. ``lambda:
generate_ratings_chunked(spec)`` or an :func:`iter_rating_file` lambda),
so full Table I shapes never materialize a 100M-entry COO triple.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.datasets.loaders import iter_rating_file
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.shards import (
    FORMAT_VERSION,
    INDEX_DTYPE,
    META_FILENAME,
    ShardStore,
    _release_pages,
    orientation_filenames,
    resolve_shard_bytes,
)

__all__ = ["build_shard_store", "build_store_from_rating_file"]

ChunkFactory = Callable[[], Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]]

#: Non-zeros processed per streaming step in the fix-up and derive
#: passes (~80 MB of transient scratch at the default).
_STREAM_NNZ = 1 << 22


def _writable_memmap(path: Path, dtype: np.dtype, count: int) -> np.ndarray | None:
    """A ``w+`` memmap of ``count`` items (``None`` — and an empty file —
    for zero length, which ``np.memmap`` refuses to map)."""
    if count == 0:
        path.write_bytes(b"")
        return None
    return np.memmap(path, dtype=dtype, mode="w+", shape=(count,))


def _flush_release(mm: np.ndarray | None) -> None:
    """msync dirty pages to the file, then drop them from this process."""
    if mm is None:
        return
    mm.flush()
    _release_pages(mm, 0, mm.size)


def _scatter_group(
    ind_mm: np.ndarray,
    val_mm: np.ndarray,
    cursor: np.ndarray,
    keys: np.ndarray,
    payload_idx: np.ndarray,
    payload_val: np.ndarray,
) -> None:
    """Append one chunk's entries to their keyed groups, preserving
    within-chunk arrival order per key (the stable counting-sort step)."""
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    uniq, counts = np.unique(ks, return_counts=True)
    group_ptr = np.zeros(uniq.size + 1, dtype=np.int64)
    np.cumsum(counts, out=group_ptr[1:])
    offs = np.arange(ks.size, dtype=np.int64) - np.repeat(group_ptr[:-1], counts)
    pos = np.repeat(cursor[uniq], counts) + offs
    ind_mm[pos] = payload_idx[order]
    val_mm[pos] = payload_val[order]
    cursor[uniq] += counts


def _validate_chunk(
    rows: np.ndarray, cols: np.ndarray, values: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
        raise ValueError("chunk arrays must be 1-D and equal-length")
    if rows.size:
        if rows.min() < 0 or rows.max() >= shape[0]:
            raise ValueError(f"chunk row index out of range for m={shape[0]}")
        if cols.min() < 0 or cols.max() >= shape[1]:
            raise ValueError(f"chunk col index out of range for n={shape[1]}")
    return rows, cols, values


def _expanded_range_rows(row_ptr: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Row index of each stored entry in nnz range ``[lo, hi)``."""
    return (
        np.searchsorted(row_ptr, np.arange(lo, hi, dtype=np.int64), side="right") - 1
    )


def _sort_rows_in_place(
    directory: Path, row_ptr: np.ndarray, nnz: int, value_dtype: np.dtype
) -> None:
    """Pass 3: column-sort each row of the rows orientation, in place.

    Processes budget-bounded *whole-row* ranges so a row is never split
    across sort units.  Raises on duplicate ``(row, col)`` pairs.
    """
    if nnz == 0:
        return
    _, indices_name, values_name = orientation_filenames("rows")
    ind = np.memmap(directory / indices_name, dtype=INDEX_DTYPE, mode="r+", shape=(nnz,))
    val = np.memmap(directory / values_name, dtype=value_dtype, mode="r+", shape=(nnz,))
    m = row_ptr.size - 1
    start = 0
    while start < m:
        stop = int(np.searchsorted(row_ptr, row_ptr[start] + _STREAM_NNZ, "right")) - 1
        stop = min(max(stop, start + 1), m)
        lo, hi = int(row_ptr[start]), int(row_ptr[stop])
        if hi > lo:
            local_rows = _expanded_range_rows(row_ptr, lo, hi)
            cols = np.array(ind[lo:hi])
            vals = np.array(val[lo:hi])
            order = np.lexsort((cols, local_rows))
            cols = cols[order]
            rows_sorted = local_rows[order]
            dup = (cols[1:] == cols[:-1]) & (rows_sorted[1:] == rows_sorted[:-1])
            if np.any(dup):
                r = int(rows_sorted[1:][dup][0])
                c = int(cols[1:][dup][0])
                raise ValueError(
                    f"duplicate rating for (row={r}, col={c}); deduplicate "
                    "the source before building a shard store"
                )
            ind[lo:hi] = cols
            val[lo:hi] = vals[order]
        start = stop
    _flush_release(ind)
    _flush_release(val)


def _derive_cols_orientation(
    directory: Path,
    row_ptr: np.ndarray,
    col_counts: np.ndarray,
    nnz: int,
    value_dtype: np.dtype,
) -> None:
    """Pass 4: counting-sort the rows orientation into the cols one."""
    indptr_name, indices_name, values_name = orientation_filenames("cols")
    n = col_counts.size
    col_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(col_counts, out=col_ptr[1:])
    col_ptr.tofile(directory / indptr_name)

    _, rows_indices_name, rows_values_name = orientation_filenames("rows")
    out_ind = _writable_memmap(directory / indices_name, INDEX_DTYPE, nnz)
    out_val = _writable_memmap(directory / values_name, value_dtype, nnz)
    if nnz == 0:
        return
    src_ind = np.memmap(
        directory / rows_indices_name, dtype=INDEX_DTYPE, mode="r", shape=(nnz,)
    )
    src_val = np.memmap(
        directory / rows_values_name, dtype=value_dtype, mode="r", shape=(nnz,)
    )
    cursor = col_ptr[:-1].copy()
    for lo in range(0, nnz, _STREAM_NNZ):
        hi = min(lo + _STREAM_NNZ, nnz)
        cols = np.array(src_ind[lo:hi])
        vals = np.array(src_val[lo:hi])
        rows = _expanded_range_rows(row_ptr, lo, hi)
        _scatter_group(out_ind, out_val, cursor, cols, rows, vals)
        _release_pages(src_ind, lo, hi)
        _release_pages(src_val, lo, hi)
    if not np.array_equal(cursor, col_ptr[1:]):
        raise AssertionError("cols orientation scatter did not fill every column")
    _flush_release(out_ind)
    _flush_release(out_val)


def _write_rows_from_chunks(
    directory: Path,
    chunks: ChunkFactory,
    shape: tuple[int, int],
    value_dtype: np.dtype,
    sorted_within_rows: bool,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Passes 1-3 for a chunk source; returns (row_ptr, col_counts, nnz)."""
    m, n = shape
    row_counts = np.zeros(m, dtype=np.int64)
    col_counts = np.zeros(n, dtype=np.int64)
    nnz = 0
    for rows, cols, values in chunks():
        rows, cols, values = _validate_chunk(rows, cols, values, shape)
        row_counts += np.bincount(rows, minlength=m)
        col_counts += np.bincount(cols, minlength=n)
        nnz += rows.size

    indptr_name, indices_name, values_name = orientation_filenames("rows")
    row_ptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_ptr[1:])
    row_ptr.tofile(directory / indptr_name)

    ind = _writable_memmap(directory / indices_name, INDEX_DTYPE, nnz)
    val = _writable_memmap(directory / values_name, value_dtype, nnz)
    cursor = row_ptr[:-1].copy()
    seen = 0
    for rows, cols, values in chunks():
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=value_dtype)
        if rows.size == 0:
            continue
        _scatter_group(ind, val, cursor, rows, cols, values)
        seen += rows.size
    if seen != nnz:
        raise ValueError(
            f"chunk source yielded {seen} entries on the scatter pass but "
            f"{nnz} on the counting pass; the factory must replay identically"
        )
    _flush_release(ind)
    _flush_release(val)
    if not sorted_within_rows:
        _sort_rows_in_place(directory, row_ptr, nnz, value_dtype)
    return row_ptr, col_counts, nnz


def _write_rows_from_csr(
    directory: Path, csr: CSRMatrix, value_dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, int]:
    """Passes 1-2 for an in-RAM CSR: its arrays are the rows orientation."""
    indptr_name, indices_name, values_name = orientation_filenames("rows")
    csr.row_ptr.tofile(directory / indptr_name)
    csr.col_idx.tofile(directory / indices_name)
    np.ascontiguousarray(csr.value, dtype=value_dtype).tofile(
        directory / values_name
    )
    col_counts = np.bincount(csr.col_idx, minlength=csr.ncols).astype(np.int64)
    return csr.row_ptr, col_counts, csr.nnz


def build_shard_store(
    dest: str | os.PathLike,
    source: CSRMatrix | COOMatrix | ChunkFactory,
    *,
    shape: tuple[int, int] | None = None,
    sorted_within_rows: bool = False,
    value_dtype: str = "float32",
    shard_bytes: int | None = None,
    overwrite: bool = False,
) -> ShardStore:
    """Convert a ratings source into a packed shard-store directory.

    ``source`` is an in-RAM matrix, or a zero-argument callable
    returning a fresh ``(rows, cols, values)`` chunk iterator (invoked
    once per streaming pass; ``shape`` is then required).  Pass
    ``sorted_within_rows=True`` when the factory guarantees chunks are
    row-major with column-sorted, duplicate-free rows (e.g.
    :func:`repro.datasets.synthetic.generate_ratings_chunked`) to skip
    the fix-up pass.  ``meta.json`` is written last, so a directory
    missing it is an aborted build, never a truncated store.

    Returns the store opened with ``shard_bytes`` (resolved through the
    usual precedence).
    """
    dest = Path(dest)
    meta_path = dest / META_FILENAME
    if meta_path.exists() and not overwrite:
        raise FileExistsError(f"{dest} already holds a shard store")
    dest.mkdir(parents=True, exist_ok=True)
    vdtype = np.dtype(value_dtype)
    if vdtype.name not in ("float32", "float64"):
        raise ValueError(f"value_dtype must be float32 or float64, got {value_dtype!r}")

    if isinstance(source, COOMatrix):
        source = CSRMatrix.from_coo(source)
    if isinstance(source, CSRMatrix):
        shape = source.shape
        row_ptr, col_counts, nnz = _write_rows_from_csr(dest, source, vdtype)
    else:
        if not callable(source):
            raise TypeError(
                "source must be a CSRMatrix, a COOMatrix, or a zero-argument "
                f"chunk factory, got {type(source).__name__}"
            )
        if shape is None:
            raise ValueError("shape=(m, n) is required for a chunk source")
        shape = (int(shape[0]), int(shape[1]))
        if shape[0] <= 0 or shape[1] <= 0:
            raise ValueError("shape dimensions must be positive")
        row_ptr, col_counts, nnz = _write_rows_from_chunks(
            dest, source, shape, vdtype, sorted_within_rows
        )

    _derive_cols_orientation(dest, row_ptr, col_counts, nnz, vdtype)
    meta = {
        "format_version": FORMAT_VERSION,
        "m": shape[0],
        "n": shape[1],
        "nnz": int(nnz),
        "value_dtype": vdtype.name,
        "index_dtype": INDEX_DTYPE.name,
    }
    meta_path.write_text(json.dumps(meta, indent=2) + "\n")
    return ShardStore.open(dest, resolve_shard_bytes(shard_bytes))


def build_store_from_rating_file(
    dest: str | os.PathLike,
    path: str | os.PathLike,
    delimiter: str | None = None,
    *,
    shard_bytes: int | None = None,
    overwrite: bool = False,
) -> tuple[ShardStore, np.ndarray, np.ndarray]:
    """Stream a ``<user, item, rating>`` file into a shard store.

    Adds an ID-compaction pass in front of the counting-sort passes
    (original IDs are arbitrary; the store needs dense 0-based indices),
    so the file is read three times but never held in memory.  Returns
    ``(store, user_ids, item_ids)`` — the same compaction maps
    :func:`repro.datasets.loaders.load_ratings` reports.  The maps are
    also saved into the store directory (``user_ids.bin`` /
    ``item_ids.bin``, raw int64) for later translation.
    """
    user_ids = np.empty(0, dtype=np.int64)
    item_ids = np.empty(0, dtype=np.int64)
    detected = delimiter
    for users, items, _ in iter_rating_file(path, detected):
        user_ids = np.union1d(user_ids, users)
        item_ids = np.union1d(item_ids, items)
    if user_ids.size == 0:
        raise ValueError(f"{path}: no ratings found")

    def chunks() -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for users, items, values in iter_rating_file(path, detected):
            yield (
                np.searchsorted(user_ids, users),
                np.searchsorted(item_ids, items),
                values,
            )

    store = build_shard_store(
        dest,
        chunks,
        shape=(user_ids.size, item_ids.size),
        shard_bytes=shard_bytes,
        overwrite=overwrite,
    )
    user_ids.tofile(store.directory / "user_ids.bin")
    item_ids.tofile(store.directory / "item_ids.bin")
    return store, user_ids, item_ids
