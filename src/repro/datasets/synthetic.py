"""Deterministic synthetic rating data matching Table I shapes.

Two products, for two consumers:

* :func:`degree_sequences` — the full-scale nnz-per-row and nnz-per-column
  sequences.  These feed the performance model directly; generating them
  does not materialize 100M ratings, so even YahooMusic R1 (m ≈ 1.9M) is
  cheap.
* :func:`generate_ratings` — a materialized COO rating matrix, used by the
  functional solvers, examples and correctness tests (typically from a
  ``spec.scaled(...)`` instance).

Both derive popularity from bounded Zipf weights, the standard model for
user-activity / item-popularity skew in recommender corpora.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.datasets.catalog import DatasetSpec
from repro.sparse.coo import COOMatrix

__all__ = [
    "zipf_degrees",
    "degree_sequences",
    "generate_ratings",
    "generate_ratings_chunked",
]


def zipf_degrees(
    count: int,
    nnz: int,
    alpha: float,
    max_degree: int,
    seed: int,
    shift_frac: float = 0.002,
) -> np.ndarray:
    """A degree sequence of ``count`` entities summing exactly to ``nnz``.

    Degrees follow shifted-Zipf weights ``(rank + shift)^-alpha`` — the
    shift (a fraction of ``count``) bounds the head of the distribution,
    matching real corpora where even the most active user rates only a few
    percent of the catalog.  The sequence is shuffled so popular entities
    are spread over the index space (IDs are not sorted by popularity in
    real datasets — this matters to the divergence model, which looks at
    *windows* of consecutive rows).  Every degree is clipped to
    ``[0, max_degree]`` and rounding residue is redistributed
    deterministically.
    """
    if count <= 0 or nnz < 0:
        raise ValueError("count must be positive and nnz non-negative")
    if nnz > count * max_degree:
        raise ValueError("nnz does not fit under max_degree")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = (ranks + shift_frac * count) ** -alpha
    raw = weights / weights.sum() * nnz
    degrees = np.minimum(np.floor(raw).astype(np.int64), max_degree)
    deficit = nnz - int(degrees.sum())
    # Distribute the remainder to the entities with the largest fractional
    # loss that still have headroom; loop because clipping can re-saturate.
    while deficit > 0:
        headroom = max_degree - degrees
        frac = raw - degrees
        frac[headroom == 0] = -np.inf
        order = np.argsort(frac)[::-1]
        take = order[: min(deficit, int((headroom > 0).sum()))]
        degrees[take] += 1
        deficit = nnz - int(degrees.sum())
    rng.shuffle(degrees)
    return degrees


@functools.lru_cache(maxsize=32)
def degree_sequences(spec: DatasetSpec, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Full-scale ``(row_lengths, col_lengths)`` for a dataset spec.

    Both sequences sum to ``spec.nnz`` (the same population of ratings
    viewed from the CSR and the CSC side).

    Results are cached per ``(spec, seed)`` — YahooMusic R1 alone has
    ~2M rows and every experiment consumes the same sequences.  Treat the
    returned arrays as read-only.
    """
    rows = zipf_degrees(spec.m, spec.nnz, spec.row_alpha, spec.n, seed)
    cols = zipf_degrees(spec.n, spec.nnz, spec.col_alpha, spec.m, seed + 1)
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


def generate_ratings(spec: DatasetSpec, seed: int = 7) -> COOMatrix:
    """Materialize a rating matrix with the spec's shape statistics.

    Row degrees are drawn from the Zipf model; each row's items are
    sampled with popularity-weighted probabilities (without replacement
    within the row), and rating values follow a discretized bell around
    the middle of the rating scale — enough structure for factorization
    to find signal, with the exact low-rank-plus-noise construction left
    to :mod:`repro.datasets.planted` for convergence studies.
    """
    rng = np.random.default_rng(seed)
    row_deg = zipf_degrees(spec.m, spec.nnz, spec.row_alpha, spec.n, seed)
    col_ranks = np.arange(1, spec.n + 1, dtype=np.float64)
    col_weights = col_ranks**-spec.col_alpha
    rng.shuffle(col_weights)
    col_prob = col_weights / col_weights.sum()

    rows = np.repeat(np.arange(spec.m, dtype=np.int64), row_deg)
    # Sample item ids for all ratings at once, then repair within-row
    # duplicates; with heavy-tailed popularity a few percent collide.
    cols = rng.choice(spec.n, size=rows.size, p=col_prob)
    cols = _dedupe_within_rows(rows, cols, spec.n, rng)

    levels = np.round(
        np.clip(
            rng.normal(
                loc=(spec.rating_min + spec.rating_max) / 2.0,
                scale=(spec.rating_max - spec.rating_min) / 4.0,
                size=rows.size,
            ),
            spec.rating_min,
            spec.rating_max,
        )
        * 2.0
    ) / 2.0  # half-star granularity
    return COOMatrix((spec.m, spec.n), rows, cols, levels.astype(np.float32))


def generate_ratings_chunked(
    spec: DatasetSpec, seed: int = 7, chunk_nnz: int = 1 << 22
):
    """Stream a synthetic rating matrix as row-major COO chunks.

    Yields ``(rows, cols, values)`` tuples — ``int64``/``int64``/
    ``float32`` — covering whole consecutive row blocks of roughly
    ``chunk_nnz`` non-zeros each, so a full-scale Netflix/YahooMusic
    shape feeds the shard-store builder without the 100M+-entry COO
    triple ever existing in RAM.  Peak memory is one chunk plus the
    O(m + n) degree/popularity vectors.

    Same popularity model and degree sequence as
    :func:`generate_ratings` for a given ``(spec, seed)``; entries are
    deterministic, duplicate-free, and column-sorted within each row
    (chunks never split a row, so chunk-local deduplication is global).
    The per-entry draws differ from :func:`generate_ratings`'s
    single-pass layout, so the two are distinct (both valid) matrices.
    """
    if chunk_nnz <= 0:
        raise ValueError("chunk_nnz must be positive")
    rng = np.random.default_rng(seed)
    row_deg = zipf_degrees(spec.m, spec.nnz, spec.row_alpha, spec.n, seed)
    col_ranks = np.arange(1, spec.n + 1, dtype=np.float64)
    col_weights = col_ranks**-spec.col_alpha
    rng.shuffle(col_weights)
    col_prob = col_weights / col_weights.sum()

    mid = (spec.rating_min + spec.rating_max) / 2.0
    scale = (spec.rating_max - spec.rating_min) / 4.0
    # Row-block boundaries: greedy fill to the nnz budget, never
    # splitting a row (so within-row dedup/sort stay chunk-local).
    deg_cum = np.zeros(spec.m + 1, dtype=np.int64)
    np.cumsum(row_deg, out=deg_cum[1:])
    start = 0
    while start < spec.m:
        stop = int(np.searchsorted(deg_cum, deg_cum[start] + chunk_nnz, "right")) - 1
        stop = min(max(stop, start + 1), spec.m)
        block_deg = row_deg[start:stop]
        rows = np.repeat(np.arange(start, stop, dtype=np.int64), block_deg)
        if rows.size == 0:
            start = stop
            continue
        cols = rng.choice(spec.n, size=rows.size, p=col_prob)
        cols = _dedupe_within_rows(rows, cols, spec.n, rng)
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        levels = np.round(
            np.clip(
                rng.normal(loc=mid, scale=scale, size=rows.size),
                spec.rating_min,
                spec.rating_max,
            )
            * 2.0
        ) / 2.0  # half-star granularity
        yield rows, cols, levels.astype(np.float32)
        start = stop


def _dedupe_within_rows(
    rows: np.ndarray, cols: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Replace duplicate (row, col) pairs with fresh columns.

    Keeps the row structure (and hence the row degree sequence) intact;
    column popularity shifts negligibly.
    """
    cols = cols.copy()
    for _ in range(16):
        keys = rows * n + cols
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        dup_sorted = np.zeros(len(keys), dtype=bool)
        dup_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
        dup_idx = order[dup_sorted]
        if dup_idx.size == 0:
            return cols
        cols[dup_idx] = rng.integers(0, n, size=dup_idx.size)
    # Random replacement stalls on nearly-full rows (coupon collector);
    # finish those exactly by drawing from each row's missing columns.
    keys = rows * n + cols
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    dup_sorted = np.zeros(len(keys), dtype=bool)
    dup_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
    dup_idx = order[dup_sorted]
    for row_id in np.unique(rows[dup_idx]):
        in_row = rows == row_id
        present = np.unique(cols[in_row])
        missing = np.setdiff1d(np.arange(n), present, assume_unique=True)
        row_dups = dup_idx[rows[dup_idx] == row_id]
        if row_dups.size > missing.size:
            raise ValueError(
                f"row {row_id} needs {row_dups.size + present.size} distinct "
                f"columns but the matrix has only {n}"
            )
        cols[row_dups] = rng.choice(missing, size=row_dups.size, replace=False)
    return cols
