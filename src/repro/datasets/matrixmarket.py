"""MatrixMarket coordinate-format IO.

The de-facto exchange format for sparse matrices (and the one GraphLab's
Netflix mirrors used).  Only the ``matrix coordinate real general``
flavour applies to rating data; indices are 1-based on disk per the
specification and converted to 0-based in memory.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["load_matrix_market", "save_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate real general"


def load_matrix_market(path: str | os.PathLike) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a COO rating matrix."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        parts = header.split()
        if (
            len(parts) != 5
            or parts[0] != "%%MatrixMarket"
            or parts[1:4] != ["matrix", "coordinate", "real"]
            or parts[4] not in ("general",)
        ):
            raise ValueError(
                f"unsupported MatrixMarket header: {header!r} "
                "(need 'matrix coordinate real general')"
            )
        size_line = None
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            size_line = line
            break
        if size_line is None:
            raise ValueError(f"{path}: missing size line")
        try:
            m, n, nnz = (int(tok) for tok in size_line.split())
        except ValueError as exc:
            raise ValueError(f"{path}: bad size line {size_line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float32)
        count = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if count >= nnz:
                raise ValueError(f"{path}: more entries than the declared {nnz}")
            r, c, v = line.split()
            rows[count] = int(r) - 1  # 1-based on disk
            cols[count] = int(c) - 1
            vals[count] = float(v)
            count += 1
        if count != nnz:
            raise ValueError(f"{path}: declared {nnz} entries, found {count}")
    return COOMatrix((m, n), rows, cols, vals)


def save_matrix_market(path: str | os.PathLike, matrix: COOMatrix) -> None:
    """Write a COO matrix as MatrixMarket coordinate real general."""
    m, n = matrix.shape
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_HEADER + "\n")
        fh.write(f"% written by repro {m}x{n} rating matrix\n")
        fh.write(f"{m} {n} {matrix.nnz}\n")
        for r, c, v in zip(matrix.row, matrix.col, matrix.value):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):g}\n")
