"""The paper's dataset catalog (Table I).

The real files (MovieLens10M, Netflix, Yahoo! Music R1/R4) are not
redistributable and unavailable offline, so each entry doubles as the
specification for a deterministic synthetic generator that matches the
published shape: user count ``m``, item count ``n``, training non-zeros
``nnz`` and heavy-tailed row/column popularity (Zipf-like, as observed in
all four corpora).  The performance model depends only on these shape
parameters, which is why the substitution preserves the evaluation
(DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "MOVIELENS1M", "MOVIELENS10M", "NETFLIX", "YAHOO_R1", "YAHOO_R4", "TABLE_I", "EXTRA_DATASETS", "dataset_by_name"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and generator parameters of one rating dataset."""

    name: str
    abbr: str
    m: int  # users
    n: int  # items
    nnz: int  # training non-zeros (Table I's "Training Nz")
    row_alpha: float  # Zipf exponent of user activity
    col_alpha: float  # Zipf exponent of item popularity
    rating_min: float
    rating_max: float

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.nnz <= 0:
            raise ValueError("m, n and nnz must be positive")
        if self.nnz > self.m * self.n:
            raise ValueError("nnz exceeds matrix capacity")
        if self.rating_min >= self.rating_max:
            raise ValueError("rating range must be non-degenerate")

    @property
    def density(self) -> float:
        return self.nnz / (self.m * self.n)

    @property
    def mean_row_nnz(self) -> float:
        return self.nnz / self.m

    @property
    def mean_col_nnz(self) -> float:
        return self.nnz / self.n

    def scaled(self, scale: float) -> "DatasetSpec":
        """A smaller instance with the same density and skew.

        Non-zeros scale by ``scale`` and both dimensions by
        ``sqrt(scale)``, so the fill fraction is preserved; mean row and
        column lengths shrink by ``sqrt(scale)``.  (Preserving the mean
        lengths instead would blow past matrix capacity for column-dense
        corpora like Netflix, whose items average 5575 ratings.)
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if scale == 1.0:
            return self
        dim = scale**0.5
        m = max(4, round(self.m * dim))
        n = max(4, round(self.n * dim))
        nnz = max(8, min(round(self.nnz * scale), m * n))
        return DatasetSpec(
            name=f"{self.name} (scale={scale:g})",
            abbr=self.abbr,
            m=m,
            n=n,
            nnz=nnz,
            row_alpha=self.row_alpha,
            col_alpha=self.col_alpha,
            rating_min=self.rating_min,
            rating_max=self.rating_max,
        )


# Not in Table I — the paper's future work proposes evaluating "more
# datasets"; MovieLens 1M is the standard small benchmark and handy for
# fast full-scale (non-scaled) functional runs.
MOVIELENS1M = DatasetSpec(
    name="Movielens1M",
    abbr="ML1M",
    m=6040,
    n=3706,
    nnz=1_000_209,
    row_alpha=0.75,
    col_alpha=0.95,
    rating_min=1.0,
    rating_max=5.0,
)

MOVIELENS10M = DatasetSpec(
    name="Movielens10M",
    abbr="MVLE",
    m=71567,
    n=65133,
    nnz=8_000_044,
    row_alpha=0.75,
    col_alpha=0.95,
    rating_min=0.5,
    rating_max=5.0,
)

NETFLIX = DatasetSpec(
    name="NetFlix",
    abbr="NTFX",
    m=480189,
    n=17770,
    nnz=99_072_112,
    row_alpha=0.70,
    col_alpha=1.00,
    rating_min=1.0,
    rating_max=5.0,
)

YAHOO_R1 = DatasetSpec(
    name="YahooMusic R1",
    abbr="YMR1",
    m=1_948_882,
    n=98212,
    nnz=115_248_575,
    row_alpha=0.80,
    col_alpha=1.05,
    rating_min=1.0,
    rating_max=5.0,
)

YAHOO_R4 = DatasetSpec(
    name="YahooMusic R4",
    abbr="YMR4",
    m=7642,
    n=11916,
    nnz=211_231,
    row_alpha=0.65,
    col_alpha=0.80,
    rating_min=1.0,
    rating_max=5.0,
)

#: Table I of the paper, in row order.
TABLE_I: tuple[DatasetSpec, ...] = (MOVIELENS10M, NETFLIX, YAHOO_R1, YAHOO_R4)

#: Additional corpora beyond Table I (paper §VII: "more datasets").
EXTRA_DATASETS: tuple[DatasetSpec, ...] = (MOVIELENS1M,)

_BY_NAME = {spec.abbr.lower(): spec for spec in TABLE_I + EXTRA_DATASETS}
_BY_NAME.update({spec.name.lower(): spec for spec in TABLE_I + EXTRA_DATASETS})
_BY_NAME.update(
    {"movielens": MOVIELENS10M, "ml10m": MOVIELENS10M, "netflix": NETFLIX, "yahoo-r1": YAHOO_R1, "yahoo-r4": YAHOO_R4}
)


def dataset_by_name(name: str) -> DatasetSpec:
    """Look up a Table I dataset by abbreviation or name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted({s.abbr for s in TABLE_I}))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
