"""Loaders for ``<userID, itemID, rating>`` rating files (paper §IV-B).

Supports the delimiters the four corpora actually use (``::`` for
MovieLens, tab for Yahoo! Music, comma for preprocessed Netflix) with
auto-detection, and compacts arbitrary integer IDs to dense 0-based
indices, returning the mapping so predictions can be translated back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["RatingFile", "iter_rating_file", "load_ratings", "save_ratings"]

_DELIMITERS = ("::", "\t", ",", " ")

#: Lines parsed per emitted chunk.  At ~20 bytes per packed entry a
#: chunk costs ~5 MB — small next to any matrix worth streaming, large
#: enough that per-chunk overhead is noise.
DEFAULT_CHUNK_LINES = 1 << 18


@dataclass(frozen=True)
class RatingFile:
    """A loaded rating file plus its ID compaction maps."""

    ratings: COOMatrix
    user_ids: np.ndarray  # original ID of each compact row index
    item_ids: np.ndarray  # original ID of each compact column index

    @property
    def n_users(self) -> int:
        return int(self.user_ids.size)

    @property
    def n_items(self) -> int:
        return int(self.item_ids.size)


def _detect_delimiter(sample_line: str) -> str:
    for delim in _DELIMITERS:
        if delim in sample_line:
            return delim
    raise ValueError(f"cannot detect delimiter in line: {sample_line!r}")


def iter_rating_file(
    path: str | os.PathLike,
    delimiter: str | None = None,
    chunk_lines: int = DEFAULT_CHUNK_LINES,
):
    """Stream a ``<user, item, rating>`` file as packed array chunks.

    Yields ``(users, items, values)`` tuples of ``int64``/``int64``/
    ``float32`` arrays, at most ``chunk_lines`` entries each, reading
    the file line by line — peak memory is one chunk, never the file.
    IDs are the *original* (uncompacted) ones; compaction needs global
    knowledge and belongs to the consumer (:func:`load_ratings`, or the
    two-pass shard builder in :mod:`repro.datasets.shardio`).

    Lines that are empty or start with ``#`` are skipped — including a
    comment or blank *first* line, so delimiter detection always runs on
    the first data line.  CRLF line endings are stripped with the rest of
    the surrounding whitespace, and the space delimiter splits on *runs*
    of whitespace (aligned columns don't produce empty fields).  Extra
    fields (e.g. MovieLens timestamps) are ignored.
    """
    if chunk_lines <= 0:
        raise ValueError("chunk_lines must be positive")
    users: list[int] = []
    items: list[int] = []
    values: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if delimiter is None:
                delimiter = _detect_delimiter(line)
            # None-split collapses runs of blanks (and mixed tabs/spaces)
            # instead of yielding empty fields between repeated spaces.
            parts = line.split(None) if delimiter == " " else line.split(delimiter)
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected ≥3 fields separated by "
                    f"{delimiter!r}, got {line!r}"
                )
            users.append(int(parts[0]))
            items.append(int(parts[1]))
            values.append(float(parts[2]))
            if len(users) >= chunk_lines:
                yield (
                    np.asarray(users, dtype=np.int64),
                    np.asarray(items, dtype=np.int64),
                    np.asarray(values, dtype=np.float32),
                )
                users, items, values = [], [], []
    if users:
        yield (
            np.asarray(users, dtype=np.int64),
            np.asarray(items, dtype=np.int64),
            np.asarray(values, dtype=np.float32),
        )


def load_ratings(path: str | os.PathLike, delimiter: str | None = None) -> RatingFile:
    """Parse a ``<user, item, rating>`` file into a compacted COO matrix.

    Streams the file through :func:`iter_rating_file` (see there for the
    line-format rules), so parsing holds packed array chunks — ~20 bytes
    per entry — instead of per-line Python objects for the whole file.
    The assembled COO is the output and necessarily resides in RAM; for
    matrices too large for that, feed the chunks to the shard-store
    builder (:func:`repro.datasets.shardio.build_store_from_rating_file`)
    instead.
    """
    user_chunks: list[np.ndarray] = []
    item_chunks: list[np.ndarray] = []
    value_chunks: list[np.ndarray] = []
    for users, items, values in iter_rating_file(path, delimiter):
        user_chunks.append(users)
        item_chunks.append(items)
        value_chunks.append(values)
    if not user_chunks:
        raise ValueError(f"{path}: no ratings found")

    user_arr = np.concatenate(user_chunks)
    item_arr = np.concatenate(item_chunks)
    user_ids, rows = np.unique(user_arr, return_inverse=True)
    item_ids, cols = np.unique(item_arr, return_inverse=True)
    coo = COOMatrix(
        (user_ids.size, item_ids.size),
        rows,
        cols,
        np.concatenate(value_chunks),
    ).deduplicate()
    return RatingFile(coo, user_ids, item_ids)


def save_ratings(
    path: str | os.PathLike,
    ratings: COOMatrix,
    delimiter: str = "\t",
    user_ids: np.ndarray | None = None,
    item_ids: np.ndarray | None = None,
) -> None:
    """Write a COO matrix in the paper's ``<user, item, rating>`` format.

    Without ID maps the *compact* 0-based indices are written — fine for
    matrices built in memory, but a matrix that came from
    :func:`load_ratings` had its original IDs compacted away.  Pass the
    :class:`RatingFile` maps (``user_ids``/``item_ids``) to translate the
    compact indices back, making ``load → save → load`` round-trip the
    original IDs bit-exactly.
    """
    rows, cols = ratings.row, ratings.col
    if user_ids is not None:
        user_ids = np.asarray(user_ids)
        if user_ids.ndim != 1 or user_ids.size != ratings.shape[0]:
            raise ValueError(
                f"user_ids must be a 1-D map of length {ratings.shape[0]} "
                f"(one original ID per compact row), got shape {user_ids.shape}"
            )
        rows = user_ids[rows]
    if item_ids is not None:
        item_ids = np.asarray(item_ids)
        if item_ids.ndim != 1 or item_ids.size != ratings.shape[1]:
            raise ValueError(
                f"item_ids must be a 1-D map of length {ratings.shape[1]} "
                f"(one original ID per compact column), got shape {item_ids.shape}"
            )
        cols = item_ids[cols]
    with open(path, "w", encoding="utf-8") as fh:
        for u, i, r in zip(rows, cols, ratings.value):
            fh.write(f"{int(u)}{delimiter}{int(i)}{delimiter}{float(r):g}\n")
