"""Train/test splitting of rating matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["TrainTestSplit", "train_test_split"]


@dataclass(frozen=True)
class TrainTestSplit:
    """A disjoint partition of observed ratings."""

    train: COOMatrix
    test: COOMatrix

    @property
    def test_fraction(self) -> float:
        total = self.train.nnz + self.test.nnz
        return self.test.nnz / total if total else 0.0


def train_test_split(
    ratings: COOMatrix,
    test_fraction: float = 0.2,
    seed: int = 0,
    keep_row_coverage: bool = True,
) -> TrainTestSplit:
    """Randomly hold out ``test_fraction`` of the ratings.

    With ``keep_row_coverage`` (the default), one rating per non-empty row
    is pinned to the training side so every user keeps at least one
    observation — otherwise ALS has no information for that user and the
    held-out RMSE measures initialization noise instead of the model.
    """
    if not 0.0 <= test_fraction < 1.0:
        raise ValueError("test_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    nnz = ratings.nnz
    test_mask = rng.random(nnz) < test_fraction

    if keep_row_coverage and nnz:
        order = np.argsort(ratings.row, kind="stable")
        sorted_rows = ratings.row[order]
        first_of_row = np.ones(nnz, dtype=bool)
        first_of_row[1:] = sorted_rows[1:] != sorted_rows[:-1]
        pinned = order[first_of_row]
        test_mask[pinned] = False

    def subset(mask: np.ndarray) -> COOMatrix:
        return COOMatrix(
            ratings.shape, ratings.row[mask], ratings.col[mask], ratings.value[mask]
        )

    return TrainTestSplit(subset(~test_mask), subset(test_mask))
