"""Datasets: Table I catalog, synthetic generators, loaders and splits."""

from repro.datasets.catalog import (
    EXTRA_DATASETS,
    MOVIELENS1M,
    MOVIELENS10M,
    NETFLIX,
    TABLE_I,
    YAHOO_R1,
    YAHOO_R4,
    DatasetSpec,
    dataset_by_name,
)
from repro.datasets.loaders import (
    RatingFile,
    iter_rating_file,
    load_ratings,
    save_ratings,
)
from repro.datasets.matrixmarket import load_matrix_market, save_matrix_market
from repro.datasets.planted import PlantedProblem, planted_problem
from repro.datasets.shardio import build_shard_store, build_store_from_rating_file
from repro.datasets.splits import TrainTestSplit, train_test_split
from repro.datasets.synthetic import (
    degree_sequences,
    generate_ratings,
    generate_ratings_chunked,
    zipf_degrees,
)

__all__ = [
    "DatasetSpec",
    "MOVIELENS1M",
    "MOVIELENS10M",
    "EXTRA_DATASETS",
    "NETFLIX",
    "YAHOO_R1",
    "YAHOO_R4",
    "TABLE_I",
    "dataset_by_name",
    "RatingFile",
    "iter_rating_file",
    "load_ratings",
    "save_ratings",
    "build_shard_store",
    "build_store_from_rating_file",
    "load_matrix_market",
    "save_matrix_market",
    "PlantedProblem",
    "planted_problem",
    "TrainTestSplit",
    "train_test_split",
    "degree_sequences",
    "generate_ratings",
    "generate_ratings_chunked",
    "zipf_degrees",
]
