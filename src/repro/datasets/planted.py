"""Planted low-rank rating matrices for convergence studies.

ALS correctness is easiest to demonstrate on data that *is* (noisily)
low-rank: plant ``R = X* Y*ᵀ + ε`` on a sparse observation pattern and
check that the solver drives held-out RMSE toward the noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["PlantedProblem", "planted_problem"]


@dataclass(frozen=True)
class PlantedProblem:
    """A sparse observation of a noisy rank-k matrix."""

    ratings: COOMatrix
    true_user_factors: np.ndarray  # (m, k)
    true_item_factors: np.ndarray  # (n, k)
    noise_std: float

    @property
    def rank(self) -> int:
        return self.true_user_factors.shape[1]

    def ideal_rmse(self) -> float:
        """The noise floor no model can beat in expectation."""
        return self.noise_std


def planted_problem(
    m: int,
    n: int,
    rank: int,
    density: float,
    noise_std: float = 0.05,
    seed: int = 0,
) -> PlantedProblem:
    """Generate a planted rank-``rank`` problem.

    Factors are scaled so that predicted ratings have roughly unit
    variance, keeping λ's effect comparable across shapes.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if rank <= 0 or rank > min(m, n):
        raise ValueError("rank must be in [1, min(m, n)]")
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((m, rank)) / rank**0.25
    Y = rng.standard_normal((n, rank)) / rank**0.25

    mask = rng.random((m, n)) < density
    rows, cols = np.nonzero(mask)
    clean = np.einsum("ij,ij->i", X[rows], Y[cols])
    noisy = clean + noise_std * rng.standard_normal(rows.size)
    ratings = COOMatrix((m, n), rows, cols, noisy.astype(np.float32))
    return PlantedProblem(ratings, X, Y, noise_std)
