"""The SAC15 baseline (Rodrigues et al. [12]).

One *thread* per row/column (Algorithm 2), with the per-thread k×k
private scratch and the colMajored value indirection.  On the CPU this is
the OpenMP implementation of Fig. 1; on the K20c it is the CUDA one; the
paper's §II-C observations (CUDA 8.4× slower than OpenMP; both far from
the optimized solver) fall out of the flat cost model.
"""

from __future__ import annotations

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import LaunchCost, OptFlags
from repro.clsim.device import DeviceKind, DeviceSpec
from repro.clsim.runtime import Context
from repro.clsim.transfer import training_transfer_cost
from repro.solvers.base import BaseSolver, SimulatedRun

__all__ = ["Sac15Baseline"]


class Sac15Baseline(BaseSolver):
    """Flat one-thread-per-row ALS (OpenMP on CPU, CUDA on GPU)."""

    name = "SAC15"

    def __init__(
        self, device: DeviceSpec, calibration: Calibration | None = None
    ) -> None:
        self.device = device
        self.context = Context(device, calibration)
        self.flags = OptFlags(batched=False)

    @property
    def implementation(self) -> str:
        """What the flat code is called on this device (Fig. 1's legend)."""
        return {
            DeviceKind.CPU: "OpenMP",
            DeviceKind.GPU: "CUDA",
            DeviceKind.MIC: "flat-OpenCL",  # §II-C: the original cannot even
            # run on the MIC; this is what a naive port would cost
        }[self.device.kind]

    def simulate(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int = 10,
        iterations: int = 5,
        dataset: str = "?",
    ) -> SimulatedRun:
        cm = self.context.cost_model
        queue = self.context.create_queue()
        transfer = training_transfer_cost(
            self.device,
            m=len(row_lengths),
            n=len(col_lengths),
            nnz=int(np.asarray(row_lengths).sum()),
            k=k,
        )
        if transfer.transfers:
            queue.enqueue("pcie_transfers", LaunchCost(0.0, 0.0, transfer.seconds))
        per_iter = None
        for _ in range(iterations):
            for lengths, side in ((row_lengths, "X"), (col_lengths, "Y")):
                costs = cm.flat_half_sweep(lengths, k, self.flags)
                # The baseline is one fused kernel per half-sweep.
                queue.enqueue(f"flat_update_{side}", costs.s1 + costs.s2 + costs.s3)
                per_iter = costs if per_iter is None else per_iter + costs
        return SimulatedRun(
            solver=f"{self.name}[{self.implementation}]",
            device=self.device.kind.value,
            dataset=dataset,
            k=k,
            ws=self.device.hw_width,
            iterations=iterations,
            seconds=queue.total_seconds,
            step_costs=per_iter,
        )
