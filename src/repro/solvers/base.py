"""Common solver interfaces.

A solver exposes two orthogonal capabilities:

* :meth:`BaseSolver.fit` — functional training on a materialized rating
  matrix (all solvers compute the same ALS math; they differ in hardware
  mapping, which the simulator prices, not in results), and
* :meth:`BaseSolver.simulate` — the simulated execution time on the
  solver's device for a dataset *shape* (full-scale degree sequences),
  which is what the paper's tables and figures measure.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.clsim.costmodel import StepCosts
from repro.core.als import ALSConfig, ALSModel, train_als
from repro.datasets.catalog import DatasetSpec
from repro.datasets.synthetic import degree_sequences
from repro.sparse.coo import COOMatrix

__all__ = ["SimulatedRun", "SolverReport", "BaseSolver"]


@dataclass(frozen=True)
class SimulatedRun:
    """Result of simulating a training run on a device."""

    solver: str
    device: str
    dataset: str
    k: int
    ws: int
    iterations: int
    seconds: float
    step_costs: StepCosts | None  # per-iteration step decomposition

    def __str__(self) -> str:
        return (
            f"{self.solver:18s} {self.device:6s} {self.dataset:6s} "
            f"k={self.k:<3d} ws={self.ws:<4d} {self.iterations} iters: "
            f"{self.seconds:9.3f} s"
        )


@dataclass(frozen=True)
class SolverReport:
    """Functional training result plus its simulated cost."""

    model: ALSModel
    run: SimulatedRun


class BaseSolver(abc.ABC):
    """Interface shared by PortableALS, Sac15Baseline and CuMF."""

    #: Human-readable solver name used in reports.
    name: str = "solver"

    @abc.abstractmethod
    def simulate(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int = 10,
        iterations: int = 5,
        dataset: str = "?",
    ) -> SimulatedRun:
        """Simulated wall-clock for training on the given dataset shape."""

    def simulate_spec(
        self,
        spec: DatasetSpec,
        k: int = 10,
        iterations: int = 5,
        seed: int = 7,
    ) -> SimulatedRun:
        """Convenience: simulate directly from a Table I dataset spec."""
        rows, cols = degree_sequences(spec, seed=seed)
        return self.simulate(rows, cols, k=k, iterations=iterations, dataset=spec.abbr)

    def fit(self, ratings: COOMatrix, config: ALSConfig | None = None) -> ALSModel:
        """Functional ALS training (identical math across solvers)."""
        return train_als(ratings, config)
