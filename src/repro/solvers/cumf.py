"""cuMF comparator (Tan et al., HPDC'16 [13]).

The paper attributes its 2.2–6.8× advantage over cuMF to two measurable
characteristics (§V-A), which this model reproduces on top of the
simulated K20c:

1. **Generic building blocks** — cuMF assembles the update from cusparse
   (``cusparseScsrmm2``) and cublas (``cublasSgeam``) calls that are tuned
   for k = 100; at small k the generic kernels leave a constant-factor
   penalty relative to the paper's per-step custom kernels.
2. **Library call cascade** — each iteration issues a pipeline of library
   kernels with their own launches, transposes and temporaries; this
   fixed per-iteration cost dominates on tiny datasets, which is why the
   paper's largest win (6.8×) is on YahooMusic R4.
"""

from __future__ import annotations

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import LaunchCost, OptFlags
from repro.clsim.device import DeviceKind, DeviceSpec, NVIDIA_TESLA_K20C
from repro.clsim.runtime import Context
from repro.clsim.transfer import training_transfer_cost
from repro.solvers.base import BaseSolver, SimulatedRun

__all__ = ["CuMF"]

#: The latent dimensionality cuMF's kernels are specially tuned for.
CUMF_TUNED_K = 100

#: Generic-kernel penalty at k far from the tuned point (fitted to the
#: paper's 2.2–2.8× range on the large datasets).
_GENERIC_PENALTY_MAX = 1.6

#: Fixed per-iteration cost of the library call cascade (launches,
#: transposes, temporaries) — dominates on YahooMusic R4.
_ITERATION_OVERHEAD_S = 0.22


class CuMF(BaseSolver):
    """Model of the cuMF GPU matrix-factorization library."""

    name = "cuMF"

    def __init__(
        self,
        device: DeviceSpec = NVIDIA_TESLA_K20C,
        calibration: Calibration | None = None,
    ) -> None:
        if device.kind is not DeviceKind.GPU:
            raise ValueError("cuMF is CUDA-only; it runs on the GPU device")
        self.device = device
        self.context = Context(device, calibration)
        # cuMF's memory-optimized ALS is a well-mapped batched design —
        # the fair basis is the fully optimized batched cost, scaled by
        # the two penalties documented above.
        self.flags = OptFlags(registers=True, local_mem=True)

    @staticmethod
    def generic_penalty(k: int) -> float:
        """Constant-factor cost of the k=100-tuned generic kernels at k."""
        if k <= 0:
            raise ValueError("k must be positive")
        distance = 1.0 - min(k, CUMF_TUNED_K) / CUMF_TUNED_K
        return 1.0 + _GENERIC_PENALTY_MAX * distance

    def simulate(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int = 10,
        iterations: int = 5,
        dataset: str = "?",
    ) -> SimulatedRun:
        cm = self.context.cost_model
        queue = self.context.create_queue()
        penalty = self.generic_penalty(k)
        transfer = training_transfer_cost(
            self.device,
            m=len(row_lengths),
            n=len(col_lengths),
            nnz=int(np.asarray(row_lengths).sum()),
            k=k,
        )
        queue.enqueue("pcie_transfers", LaunchCost(0.0, 0.0, transfer.seconds))
        per_iter = None
        for _ in range(iterations):
            for lengths, side in ((row_lengths, "X"), (col_lengths, "Y")):
                costs = cm.batched_half_sweep(lengths, k, 32, self.flags)
                queue.enqueue(
                    f"cusparse_csrmm_{side}",
                    LaunchCost(
                        costs.s1.compute_s * penalty + costs.s2.compute_s * penalty,
                        costs.s1.memory_s * penalty + costs.s2.memory_s * penalty,
                        costs.s1.overhead_s + costs.s2.overhead_s,
                    ),
                )
                queue.enqueue("batched_solve_" + side, costs.s3)
                per_iter = costs if per_iter is None else per_iter + costs
            queue.enqueue(
                "library_cascade",
                LaunchCost(0.0, 0.0, _ITERATION_OVERHEAD_S),
            )
        return SimulatedRun(
            solver=self.name,
            device=self.device.kind.value,
            dataset=dataset,
            k=k,
            ws=32,
            iterations=iterations,
            seconds=queue.total_seconds,
            step_costs=per_iter,
        )
