"""Solvers: the paper's implementation and the two comparators.

* :class:`PortableALS` — the paper's contribution: thread-batched OpenCL
  ALS with per-architecture code variants, running on any simulated
  device.
* :class:`Sac15Baseline` — Rodrigues et al. [12]: the flat
  one-thread-per-row OpenMP (CPU) / CUDA (GPU) implementation the paper
  diagnoses and measures against (Figs. 1, 7).
* :class:`CuMF` — Tan et al.'s HPDC'16 GPU library [13], modelled by its
  two documented cost characteristics (Fig. 7's 2.2–6.8× comparison).
"""

from repro.solvers.base import SimulatedRun, SolverReport
from repro.solvers.portable import PortableALS
from repro.solvers.baseline_sac15 import Sac15Baseline
from repro.solvers.cumf import CuMF

__all__ = [
    "SimulatedRun",
    "SolverReport",
    "PortableALS",
    "Sac15Baseline",
    "CuMF",
]
