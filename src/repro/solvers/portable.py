"""PortableALS: the paper's efficient & portable OpenCL solver.

One code base, three devices: the solver picks (or is given) a code
variant and a work-group size, builds the per-device cost model, and
enqueues the S1/S2/S3 kernels of every half-sweep on a simulated command
queue.  Functional results come from the validated fast path; execution
time comes from the queue's profiling events.
"""

from __future__ import annotations

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import LaunchCost
from repro.clsim.device import DeviceSpec
from repro.clsim.runtime import CommandQueue, Context
from repro.clsim.transfer import training_transfer_cost
from repro.core.als import ALSConfig
from repro.kernels.variants import Variant, recommended_variant
from repro.solvers.base import BaseSolver, SimulatedRun, SolverReport
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["PortableALS"]


class PortableALS(BaseSolver):
    """The paper's thread-batched, variant-selected ALS solver."""

    name = "ours"

    def __init__(
        self,
        device: DeviceSpec,
        variant: Variant | None = None,
        ws: int = 32,
        calibration: Calibration | None = None,
    ) -> None:
        if ws <= 0:
            raise ValueError("work-group size must be positive")
        self.device = device
        self.variant = variant or recommended_variant(device)
        if self.variant.is_baseline:
            raise ValueError(
                "PortableALS is the thread-batched solver; use Sac15Baseline "
                "for the flat mapping"
            )
        self.ws = ws
        self.context = Context(device, calibration)

    # ------------------------------------------------------------------
    # simulated timing
    # ------------------------------------------------------------------
    def simulate(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int = 10,
        iterations: int = 5,
        dataset: str = "?",
        queue: CommandQueue | None = None,
    ) -> SimulatedRun:
        """Simulate a training run; pass ``queue`` to keep the per-launch
        profiling events (e.g. for the merged trace export)."""
        cm = self.context.cost_model
        if queue is None:
            queue = self.context.create_queue()
        flags = self.variant.flags
        transfer = training_transfer_cost(
            self.device,
            m=len(row_lengths),
            n=len(col_lengths),
            nnz=int(np.asarray(row_lengths).sum()),
            k=k,
        )
        if transfer.transfers:
            queue.enqueue("pcie_transfers", LaunchCost(0.0, 0.0, transfer.seconds))
        per_iter = None
        for _ in range(iterations):
            for lengths, side in ((row_lengths, "X"), (col_lengths, "Y")):
                costs = cm.batched_half_sweep(lengths, k, self.ws, flags)
                queue.enqueue(f"s1_update_{side}", costs.s1)
                queue.enqueue(f"s2_update_{side}", costs.s2)
                queue.enqueue(f"s3_update_{side}", costs.s3)
                per_iter = costs if per_iter is None else per_iter + costs
        return SimulatedRun(
            solver=f"{self.name}[{self.variant.name}]",
            device=self.device.kind.value,
            dataset=dataset,
            k=k,
            ws=self.ws,
            iterations=iterations,
            seconds=queue.total_seconds,
            step_costs=per_iter,
        )

    # ------------------------------------------------------------------
    # functional + simulated combined
    # ------------------------------------------------------------------
    def fit_report(
        self,
        ratings: COOMatrix,
        config: ALSConfig | None = None,
        dataset: str = "?",
    ) -> SolverReport:
        """Train on materialized ratings and report the simulated cost of
        the same run on this solver's device."""
        config = config or ALSConfig()
        model = self.fit(ratings, config)
        R = CSRMatrix.from_coo(ratings)
        cols = CSCMatrix.from_csr(R).col_lengths()
        run = self.simulate(
            R.row_lengths(),
            cols,
            k=config.k,
            iterations=config.iterations,
            dataset=dataset,
        )
        return SolverReport(model=model, run=run)
