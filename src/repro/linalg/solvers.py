"""S3 solver variants: one registry for the batched normal-equation solve.

The paper's S3 is the per-row ``smat x = svec`` solve; §V-C compares a
Gaussian-elimination kernel against the Cholesky method and keeps the
latter.  This module is where those code variants live on the host side:

* ``cholesky`` — the from-scratch reference (:mod:`repro.linalg.cholesky`).
  Loops over the k columns with Python-level einsum dispatches: faithful
  to the paper's hand-written kernel, but ~3·k interpreter round-trips
  per half-sweep.
* ``gaussian`` — from-scratch LU with partial pivoting, the §V-C
  comparison point (~2× the flops of Cholesky on SPD systems).
* ``lapack`` — the whole occupied ``(batch, k, k)`` stack factored by
  NumPy's native batched ``np.linalg.cholesky`` (one gufunc call into
  LAPACK ``dpotrf``) and solved with two blocked batched triangular
  substitutions whose k² work rides on O(k/16) GEMMs.  When the batched
  factorization rejects the stack, the failing systems are isolated
  per-system (the paper's SPD guarantee makes this a never-in-theory
  robustness path) and recovered with a least-squares solve, so one
  indefinite matrix no longer aborts the whole batch.
* ``auto`` — defer to the empirical selector in
  :mod:`repro.autotune.solver`, the §III-D measure-then-pick loop
  applied to S3.

``resolve_solver`` implements the usual precedence: explicit argument >
:func:`configure_solver` (CLI) > ``REPRO_SOLVER`` environment > the
legacy ``cholesky`` boolean of the sweep API.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.linalg.cholesky import CholeskyError, as_float64_stack
from repro.linalg.gaussian import batched_gaussian_solve
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled

__all__ = [
    "SOLVER_MODES",
    "SOLVERS",
    "batched_lapack_solve",
    "lapack_cholesky_factor",
    "configure_solver",
    "resolve_solver",
    "solver_fn",
]

_ENV_SOLVER = "REPRO_SOLVER"

#: Names accepted by ``ALSConfig.solver`` / ``--solver`` / ``REPRO_SOLVER``.
SOLVER_MODES = ("cholesky", "gaussian", "lapack", "auto")

# Process-wide default installed by configure_solver (the CLI flag lands
# here); ``None`` falls through to the environment, then the legacy bool.
_CONFIGURED: dict[str, str | None] = {"solver": None}


def _validate_solver(name: str) -> str:
    if name not in SOLVER_MODES:
        raise ValueError(f"solver must be one of {SOLVER_MODES}, got {name!r}")
    return name


def configure_solver(solver: str | None = None) -> None:
    """Install a process-wide S3 solver default (``None`` resets it)."""
    _CONFIGURED["solver"] = None if solver is None else _validate_solver(solver)


def resolve_solver(solver: str | None = None, cholesky: bool = True) -> str:
    """The effective solver name for a sweep call.

    Precedence: explicit ``solver`` > :func:`configure_solver` >
    ``REPRO_SOLVER`` > the legacy ``cholesky`` boolean ("cholesky" when
    true, "gaussian" when false).
    """
    if solver is not None:
        return _validate_solver(solver)
    if _CONFIGURED["solver"] is not None:
        return _CONFIGURED["solver"]
    env = os.environ.get(_ENV_SOLVER)
    if env:
        return _validate_solver(env)
    return "cholesky" if cholesky else "gaussian"


def lapack_cholesky_factor(a: np.ndarray) -> np.ndarray:
    """Batched lower-Cholesky via LAPACK, with the reference error type.

    Same contract as :func:`repro.linalg.cholesky.batched_cholesky_factor`
    (raises :class:`CholeskyError` naming the first offending system) but
    one ``dpotrf`` gufunc call for the whole stack.
    """
    a = as_float64_stack(a, 3)
    if a.shape[1] != a.shape[2]:
        raise ValueError("input must have shape (batch, k, k)")
    try:
        return np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        idx = int(np.nonzero(_indefinite_mask(a))[0][0])
        raise CholeskyError(f"matrix {idx} not positive definite") from None


def _indefinite_mask(a: np.ndarray) -> np.ndarray:
    """Boolean mask of systems whose individual factorization fails."""
    bad = np.zeros(a.shape[0], dtype=bool)
    for i in range(a.shape[0]):
        try:
            np.linalg.cholesky(a[i])
        except np.linalg.LinAlgError:
            bad[i] = True
    if not bad.any():
        # The batched gufunc rejected the stack but every system factors
        # alone — should not happen; flag everything rather than loop.
        bad[:] = True
    return bad


#: Panel width of the blocked substitution: within a panel the rows are
#: eliminated one vectorized step at a time, and the trailing update is
#: a single batched GEMM — O(k/block) matmuls carry the k² work instead
#: of k dot products, and (unlike ``np.linalg.solve`` on the factor) no
#: LU of an already-triangular matrix is paid.
_TRSM_BLOCK = 16


def _triangular_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``x`` with ``L Lᵀ x = b`` via two blocked batched substitutions."""
    k = b.shape[1]
    block = _TRSM_BLOCK
    # Forward: L z = b, by lower panels.
    z = b.copy()
    for s in range(0, k, block):
        e = min(s + block, k)
        for i in range(s, e):
            if i > s:
                z[:, i] -= np.einsum("bj,bj->b", L[:, i, s:i], z[:, s:i])
            z[:, i] /= L[:, i, i]
        if e < k:
            z[:, e:] -= np.matmul(L[:, e:, s:e], z[:, s:e, None])[:, :, 0]
    # Backward: Lᵀ x = z, by upper panels (indexing L column-wise keeps
    # the factor in place — no (batch, k, k) transposed copy).
    x = z
    for e in range(k, 0, -block):
        s = max(e - block, 0)
        for i in range(e - 1, s - 1, -1):
            if i < e - 1:
                x[:, i] -= np.einsum("bj,bj->b", L[:, i + 1:e, i], x[:, i + 1:e])
            x[:, i] /= L[:, i, i]
        if s > 0:
            x[:, :s] -= np.matmul(
                L[:, s:e, :s].transpose(0, 2, 1), x[:, s:e, None]
            )[:, :, 0]
    return x


def batched_lapack_solve(
    a: np.ndarray, b: np.ndarray, fallback: bool = True
) -> np.ndarray:
    """Solve a stack of SPD systems with LAPACK-class batched kernels.

    ``fallback=True`` (the sweep default) degrades gracefully when the
    batched factorization rejects the stack: PD systems are still solved
    through their Cholesky factors, and the indefinite ones fall back to
    a per-system least-squares solve (counted in the
    ``solver.lapack.fallback_systems`` metric).  ``fallback=False``
    raises :class:`CholeskyError` like the reference implementation.
    """
    a = as_float64_stack(a, 3)
    b = as_float64_stack(b, 2, "rhs")
    if a.shape[1] != a.shape[2]:
        raise ValueError("input must have shape (batch, k, k)")
    if b.shape[0] != a.shape[0] or b.shape[1] != a.shape[1]:
        raise ValueError("rhs must have shape (batch, k)")
    try:
        L = np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        if not fallback:
            idx = int(np.nonzero(_indefinite_mask(a))[0][0])
            raise CholeskyError(f"matrix {idx} not positive definite") from None
        return _solve_with_fallback(a, b)
    return _triangular_solve(L, b)


def _solve_with_fallback(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    bad = _indefinite_mask(a)
    good = ~bad
    x = np.empty_like(b)
    if good.any():
        x[good] = _triangular_solve(np.linalg.cholesky(a[good]), b[good])
    for i in np.nonzero(bad)[0]:
        x[i] = np.linalg.lstsq(a[i], b[i], rcond=None)[0]
    if is_enabled():
        obs_metrics.inc("solver.lapack.fallback_systems", int(bad.sum()))
    return x


def _reference_cholesky(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Imported lazily at registry-build time below to avoid a cycle with
    # repro.linalg.cholesky's own import of this module (there is none
    # today; the indirection just keeps the table flat).
    from repro.linalg.cholesky import batched_cholesky_solve

    return batched_cholesky_solve(a, b)


#: name -> batched solve ``(A, b) -> x`` over ``(batch, k, k)`` stacks.
SOLVERS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cholesky": _reference_cholesky,
    "gaussian": batched_gaussian_solve,
    "lapack": batched_lapack_solve,
}


def solver_fn(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """The batched solve for a concrete (non-``auto``) solver name."""
    try:
        return SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"solver must be one of {tuple(SOLVERS)}, got {name!r}"
        ) from None
