"""Cholesky factorization and triangular solves, scalar and batched.

Implemented from scratch (no ``numpy.linalg.cholesky``) because the paper's
S3 step is a hand-written Cholesky kernel and we model its cost at the
operation level.  The ALS normal matrices ``YᵀY + λI`` are symmetric
positive definite whenever λ > 0, so no pivoting is needed.

The batched variants factor a whole stack of k×k systems with vectorized
column updates — the NumPy analogue of the batched Cholesky the paper cites
from Kurzak et al. [21].
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CholeskyError",
    "as_float64_stack",
    "cholesky_factor",
    "cholesky_solve",
    "forward_substitution",
    "backward_substitution",
    "batched_cholesky_factor",
    "batched_cholesky_solve",
]


class CholeskyError(ValueError):
    """Raised when a matrix is not (numerically) positive definite."""


def as_float64_stack(a: np.ndarray, ndim: int, name: str = "input") -> np.ndarray:
    """``a`` as C-contiguous float64 with ``ndim`` axes, copying only if needed.

    A half-sweep hands the batched solvers freshly assembled float64
    contiguous stacks, so the common case must be a pure dtype/layout
    check that returns the argument unchanged; only genuinely foreign
    inputs (lists, float32, transposed views) pay a conversion.
    """
    arr = np.asarray(a)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got shape {arr.shape}")
    if arr.dtype != np.float64 or not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr, dtype=np.float64)
    return arr


def cholesky_factor(a: np.ndarray) -> np.ndarray:
    """Return lower-triangular ``L`` with ``L @ L.T == a``.

    Column-by-column (left-looking) algorithm; ``a`` must be symmetric
    positive definite.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("input must be a square matrix")
    k = a.shape[0]
    L = np.zeros_like(a)
    for j in range(k):
        # diag: a[j,j] - sum of squares of the row built so far
        d = a[j, j] - L[j, :j] @ L[j, :j]
        if d <= 0.0 or not np.isfinite(d):
            raise CholeskyError(f"matrix not positive definite at pivot {j} (d={d})")
        L[j, j] = np.sqrt(d)
        if j + 1 < k:
            L[j + 1 :, j] = (a[j + 1 :, j] - L[j + 1 :, :j] @ L[j, :j]) / L[j, j]
    return L


def forward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L z = b`` for lower-triangular ``L``."""
    L = np.asarray(L, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    k = L.shape[0]
    z = np.zeros(k, dtype=np.float64)
    for i in range(k):
        z[i] = (b[i] - L[i, :i] @ z[:i]) / L[i, i]
    return z


def backward_substitution(U: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U``."""
    U = np.asarray(U, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    k = U.shape[0]
    x = np.zeros(k, dtype=np.float64)
    for i in range(k - 1, -1, -1):
        x[i] = (b[i] - U[i, i + 1 :] @ x[i + 1 :]) / U[i, i]
    return x


def cholesky_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a x = b`` via ``a = L Lᵀ`` (Algorithm 2 lines 16–17)."""
    L = cholesky_factor(a)
    z = forward_substitution(L, b)
    return backward_substitution(L.T, z)


# ----------------------------------------------------------------------
# batched variants: stack shape (batch, k, k) / (batch, k)
# ----------------------------------------------------------------------


def batched_cholesky_factor(a: np.ndarray) -> np.ndarray:
    """Factor a stack of SPD matrices: ``a[b] = L[b] @ L[b].T`` for all b.

    Loops over the k columns only (k is small, typically 10–100) while the
    batch dimension stays fully vectorized — the structure of a batched GPU
    Cholesky, transliterated to NumPy broadcasting.
    """
    a = as_float64_stack(a, 3)
    if a.shape[1] != a.shape[2]:
        raise ValueError("input must have shape (batch, k, k)")
    batch, k, _ = a.shape
    L = np.zeros_like(a)
    for j in range(k):
        d = a[:, j, j] - np.einsum("bi,bi->b", L[:, j, :j], L[:, j, :j])
        bad = (d <= 0.0) | ~np.isfinite(d)
        if bad.any():
            idx = int(np.nonzero(bad)[0][0])
            raise CholeskyError(
                f"matrix {idx} not positive definite at pivot {j} (d={d[idx]})"
            )
        L[:, j, j] = np.sqrt(d)
        if j + 1 < k:
            num = a[:, j + 1 :, j] - np.einsum(
                "bij,bj->bi", L[:, j + 1 :, :j], L[:, j, :j]
            )
            L[:, j + 1 :, j] = num / L[:, j, j][:, None]
    return L


def batched_cholesky_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a[i] x[i] = b[i]`` for a stack of SPD systems."""
    a = as_float64_stack(a, 3)
    b = as_float64_stack(b, 2, "rhs")
    if b.shape[0] != a.shape[0] or b.shape[1] != a.shape[1]:
        raise ValueError("rhs must have shape (batch, k)")
    L = batched_cholesky_factor(a)
    batch, k, _ = a.shape
    # forward: L z = b
    z = np.zeros_like(b)
    for i in range(k):
        z[:, i] = (b[:, i] - np.einsum("bj,bj->b", L[:, i, :i], z[:, :i])) / L[:, i, i]
    # backward: Lᵀ x = z
    x = np.zeros_like(b)
    for i in range(k - 1, -1, -1):
        x[:, i] = (
            z[:, i] - np.einsum("bj,bj->b", L[:, i + 1 :, i], x[:, i + 1 :])
        ) / L[:, i, i]
    return x
