"""Gaussian elimination with partial pivoting.

Kept as the non-Cholesky S3 comparator: §V-C reports that switching S3 to
the Cholesky method cut the overall Netflix/K20c time from 15 s to 12 s.
Gaussian elimination does ~2× the flops of Cholesky on an SPD system
(k³/3 vs 2k³/3 multiply–adds), which is exactly the gap the cost model
charges for the unoptimized S3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_solve", "batched_gaussian_solve"]


def gaussian_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a x = b`` by LU with partial pivoting (in-place on copies)."""
    a = np.array(a, dtype=np.float64, copy=True)
    b = np.array(b, dtype=np.float64, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    k = a.shape[0]
    if b.shape != (k,):
        raise ValueError(f"rhs must have length {k}")
    for col in range(k):
        pivot = col + int(np.argmax(np.abs(a[col:, col])))
        if a[pivot, col] == 0.0:
            raise np.linalg.LinAlgError("singular matrix")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            b[[col, pivot]] = b[[pivot, col]]
        factors = a[col + 1 :, col] / a[col, col]
        a[col + 1 :, col:] -= factors[:, None] * a[col, col:]
        b[col + 1 :] -= factors * b[col]
    x = np.zeros(k, dtype=np.float64)
    for i in range(k - 1, -1, -1):
        x[i] = (b[i] - a[i, i + 1 :] @ x[i + 1 :]) / a[i, i]
    return x


def batched_gaussian_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a stack of systems; batch vectorized, pivoting per system.

    ALS normal matrices are SPD so pivots never vanish, but we still pick
    the max pivot per system for numerical robustness.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    b = np.array(b, dtype=np.float64, copy=True)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError("input must have shape (batch, k, k)")
    batch, k, _ = a.shape
    if b.shape != (batch, k):
        raise ValueError("rhs must have shape (batch, k)")
    rows = np.arange(batch)
    for col in range(k):
        pivot = col + np.argmax(np.abs(a[:, col:, col]), axis=1)
        if np.any(a[rows, pivot, col] == 0.0):
            raise np.linalg.LinAlgError("singular matrix in batch")
        swap = pivot != col
        if swap.any():
            sel = rows[swap]
            tmp = a[sel, col, :].copy()
            a[sel, col, :] = a[sel, pivot[swap], :]
            a[sel, pivot[swap], :] = tmp
            tmpb = b[sel, col].copy()
            b[sel, col] = b[sel, pivot[swap]]
            b[sel, pivot[swap]] = tmpb
        factors = a[:, col + 1 :, col] / a[:, col, col][:, None]
        a[:, col + 1 :, col:] -= factors[:, :, None] * a[:, col, col:][:, None, :]
        b[:, col + 1 :] -= factors * b[:, col][:, None]
    x = np.zeros_like(b)
    for i in range(k - 1, -1, -1):
        x[:, i] = (
            b[:, i] - np.einsum("bj,bj->b", a[:, i, i + 1 :], x[:, i + 1 :])
        ) / a[:, i, i]
    return x
