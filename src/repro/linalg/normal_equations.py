"""Assembly of the ALS normal equations.

For each row ``u`` with rated item set Ω_u, ALS solves

    (Y_{Ω_u}ᵀ Y_{Ω_u} + λ I) x_u = Y_{Ω_u}ᵀ r_u

(paper Eq. 4).  Algorithm 2 computes the Gram matrix over *only* the rated
rows of ``Y`` — note line 6's loop bound ``omegaSize``: the Gram sum runs
over the non-zeros of row ``u``, not over all of ``Y``.  These helpers form
the vectorized reference that every kernel variant is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.obs.spans import span
from repro.sparse.csr import CSRMatrix

__all__ = ["assemble_gram", "assemble_rhs", "batched_normal_equations"]


def assemble_gram(Y: np.ndarray, cols: np.ndarray, lam: float) -> np.ndarray:
    """``Y_Ωᵀ Y_Ω + λI`` for one row's rated column set (the paper's smat)."""
    Y = np.asarray(Y, dtype=np.float64)
    sub = Y[cols]
    k = Y.shape[1]
    return sub.T @ sub + lam * np.eye(k)


def assemble_rhs(Y: np.ndarray, cols: np.ndarray, ratings: np.ndarray) -> np.ndarray:
    """``Y_Ωᵀ r_u`` for one row (the paper's svec)."""
    Y = np.asarray(Y, dtype=np.float64)
    return Y[cols].T @ np.asarray(ratings, dtype=np.float64)


def batched_normal_equations(
    R: CSRMatrix, Y: np.ndarray, lam: float
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble ``(smat, svec)`` for every row of ``R`` at once.

    Returns ``A`` of shape (m, k, k) and ``b`` of shape (m, k).  Rows with
    no ratings get ``A = λI`` and ``b = 0`` so downstream batched solvers
    stay regular; the ALS driver leaves such rows at zero, matching
    Algorithm 2's ``omegaSize > 0`` guard.

    The assembly is a segment-sum over the non-zeros: for each stored
    rating (u, i, r) accumulate ``y_i y_iᵀ`` into ``A[u]`` and ``r · y_i``
    into ``b[u]``.  ``np.add.at`` performs the scatter with duplicate
    accumulation — the vectorized analogue of the per-row loops the kernels
    run on-device.
    """
    Y = np.asarray(Y, dtype=np.float64)
    m = R.nrows
    k = Y.shape[1]
    if Y.shape[0] != R.ncols:
        raise ValueError(f"Y must have {R.ncols} rows, got {Y.shape[0]}")
    rows = R.expanded_rows()
    # The paper's S1 (smat = Y_ΩᵀY_Ω + λI) and S2 (svec = Y_Ωᵀ r_u) run as
    # separate kernels; the spans keep that boundary so the measured
    # hotspot table decomposes the same way as Fig. 8.  The Y gather is
    # shared by both steps and attributed to S1, which reads it first.
    with span("als.s1.gram", stage="S1", nnz=R.nnz, k=k):
        gathered = Y[R.col_idx]  # (nnz, k)
        outer = gathered[:, :, None] * gathered[:, None, :]  # (nnz, k, k)
        A = np.zeros((m, k, k), dtype=np.float64)
        np.add.at(A, rows, outer)
        A += lam * np.eye(k)
    with span("als.s2.rhs", stage="S2", nnz=R.nnz, k=k):
        b = np.zeros((m, k), dtype=np.float64)
        np.add.at(b, rows, gathered * R.value[:, None].astype(np.float64))
    return A, b
