"""Assembly of the ALS normal equations.

For each row ``u`` with rated item set Ω_u, ALS solves

    (Y_{Ω_u}ᵀ Y_{Ω_u} + λ I) x_u = Y_{Ω_u}ᵀ r_u

(paper Eq. 4).  Algorithm 2 computes the Gram matrix over *only* the rated
rows of ``Y`` — note line 6's loop bound ``omegaSize``: the Gram sum runs
over the non-zeros of row ``u``, not over all of ``Y``.

Two batched assembly strategies are provided, mirroring the paper's code
variants:

* ``scatter`` — the historical vectorized reference: materialize every
  per-rating outer product ``y_i y_iᵀ`` as an ``(nnz, k, k)`` tensor and
  scatter-add it row-wise with ``np.add.at``.  Simple, but the
  intermediate grows with ``nnz · k²`` and ``np.add.at`` pays per-element
  dispatch — the Python analogue of the divergent one-thread-per-row
  kernel the paper starts from (SAC15 baseline).
* ``binned`` — the analogue of the paper's *thread batching*: rows are
  grouped by degree (:meth:`CSRMatrix.degree_bins`), each bin gathers a
  dense ``(rows, width, k)`` block of ``Y`` and reduces it with one
  batched GEMM (``Gᵀ G``), tiled so peak scratch never exceeds an
  nnz budget — the tile budget plays the role of the paper's bounded
  local-memory working set.  S2 runs as a ``bincount`` segment-sum
  (:meth:`CSRMatrix.matmat`).  An optional float32 compute mode mirrors
  the paper's single-precision kernels (§IV); accumulation into the
  returned ``A``/``b`` stays float64.

``batched_normal_equations`` dispatches between them (explicit argument >
:func:`configure_assembly` > ``REPRO_ASSEMBLY``-style env vars >
built-ins); ``mode="auto"`` defers to the empirical selector in
:mod:`repro.autotune.assembly`, the same measure-then-pick loop the paper
uses to choose code variants.

Both variants additionally accept a per-non-zero **weight vector**
(``nnz_weight``) turning the Gram sum into ``Σ w_e · y_e y_eᵀ`` and an
override for the RHS coefficients (``rhs_nnz_value``).  That is exactly
the confidence-weighted correction ``Yᵀ(C_u − I)Y`` of implicit-feedback
ALS (Hu–Koren, with ``w = α·r`` and RHS coefficients ``1 + α·r``), so
the implicit trainer rides the same degree-binned, tile-budgeted
machinery instead of a private ``(nnz, k, k)`` scatter kernel.  Weighted
calls report under the ``als.implicit.s1``/``als.implicit.s2`` span
names (stage attrs unchanged, so the hotspot table folds them into the
same S1/S2/S3 decomposition).
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix

__all__ = [
    "assemble_gram",
    "assemble_rhs",
    "batched_normal_equations",
    "binned_normal_equations",
    "scatter_normal_equations",
    "complement_predictions",
    "GramCache",
    "configure_assembly",
    "assembly_defaults",
    "tile_bytes_bound",
    "DEFAULT_TILE_NNZ",
    "DEFAULT_BIN_GROWTH",
    "ASSEMBLY_MODES",
]

#: Default cap on non-zeros gathered per tile (~256 MB of float64 scratch
#: at k = 64; proportionally less for smaller k or float32 compute).
DEFAULT_TILE_NNZ = 1 << 19

#: Default degree-bin growth factor: rows whose degrees differ by less
#: than 25% share a (padded) bin, bounding both padding waste and the
#: number of bins (geometric in the max degree).
DEFAULT_BIN_GROWTH = 1.25

ASSEMBLY_MODES = ("binned", "scatter", "auto")

_ENV_MODE = "REPRO_ASSEMBLY"
_ENV_TILE = "REPRO_TILE_NNZ"
_ENV_DTYPE = "REPRO_ASSEMBLY_DTYPE"

_COMPUTE_DTYPES = {"float32": np.float32, "float64": np.float64}

# Process-wide defaults installed by configure_assembly (CLI flags land
# here).  ``None`` falls through to the environment, then the built-ins.
_CONFIGURED: dict[str, object | None] = {
    "mode": None,
    "tile_nnz": None,
    "compute_dtype": None,
}

# Cached per-k diagonal index — hoists the per-call ``lam * np.eye(k)``
# allocation: the ridge becomes an in-place diagonal add.
_DIAG_CACHE: dict[int, np.ndarray] = {}


def _diag(k: int) -> np.ndarray:
    idx = _DIAG_CACHE.get(k)
    if idx is None:
        idx = np.arange(k)
        idx.setflags(write=False)
        _DIAG_CACHE[k] = idx
    return idx


def _as_float(Y: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``Y`` as C-contiguous ``dtype``, copying only when it isn't already."""
    arr = np.asarray(Y)
    if arr.dtype == dtype and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=dtype)


def _validate_mode(mode: str) -> str:
    if mode not in ASSEMBLY_MODES:
        raise ValueError(f"assembly mode must be one of {ASSEMBLY_MODES}, got {mode!r}")
    return mode


def _validate_tile(tile_nnz: int) -> int:
    tile_nnz = int(tile_nnz)
    if tile_nnz < 1:
        raise ValueError("tile_nnz must be >= 1")
    return tile_nnz


def _validate_dtype(compute_dtype: object) -> np.dtype:
    if isinstance(compute_dtype, str):
        try:
            return np.dtype(_COMPUTE_DTYPES[compute_dtype])
        except KeyError:
            raise ValueError(
                f"compute dtype must be one of {tuple(_COMPUTE_DTYPES)}, "
                f"got {compute_dtype!r}"
            ) from None
    dt = np.dtype(compute_dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"compute dtype must be float32 or float64, got {dt}")
    return dt


def configure_assembly(
    mode: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> None:
    """Install process-wide assembly defaults (the CLI flags land here).

    Every call sets all three knobs; ``None`` resets a knob to "fall back
    to the environment / built-in default", so ``configure_assembly()``
    restores the out-of-the-box behavior.
    """
    _CONFIGURED["mode"] = None if mode is None else _validate_mode(mode)
    _CONFIGURED["tile_nnz"] = None if tile_nnz is None else _validate_tile(tile_nnz)
    _CONFIGURED["compute_dtype"] = (
        None if compute_dtype is None else _validate_dtype(compute_dtype)
    )


def _resolve_mode(mode: str | None) -> str:
    if mode is not None:
        return _validate_mode(mode)
    if _CONFIGURED["mode"] is not None:
        return _CONFIGURED["mode"]  # type: ignore[return-value]
    env = os.environ.get(_ENV_MODE)
    if env:
        return _validate_mode(env)
    return "binned"


def _resolve_tile(tile_nnz: int | None) -> int:
    if tile_nnz is not None:
        return _validate_tile(tile_nnz)
    if _CONFIGURED["tile_nnz"] is not None:
        return _CONFIGURED["tile_nnz"]  # type: ignore[return-value]
    env = os.environ.get(_ENV_TILE)
    if env:
        try:
            return _validate_tile(int(env))
        except ValueError as exc:
            raise ValueError(f"{_ENV_TILE}={env!r}: {exc}") from None
    return DEFAULT_TILE_NNZ


def _resolve_dtype(compute_dtype: object | None) -> np.dtype:
    if compute_dtype is not None:
        return _validate_dtype(compute_dtype)
    if _CONFIGURED["compute_dtype"] is not None:
        return _CONFIGURED["compute_dtype"]  # type: ignore[return-value]
    env = os.environ.get(_ENV_DTYPE)
    if env:
        return _validate_dtype(env)
    return np.dtype(np.float64)


def assembly_defaults() -> dict[str, object]:
    """The currently resolved (mode, tile_nnz, compute_dtype) defaults."""
    return {
        "mode": _resolve_mode(None),
        "tile_nnz": _resolve_tile(None),
        "compute_dtype": _resolve_dtype(None).name,
    }


def tile_bytes_bound(
    tile_nnz: int,
    k: int,
    compute_dtype: object = np.float64,
    weighted: bool = False,
) -> int:
    """Upper bound on the binned path's peak per-tile scratch, in bytes.

    A tile holds at most ``tile_nnz`` gathered non-zeros and at most
    ``tile_nnz / max(k, width)`` rows, so the dominant terms are the
    ``(rows, width, k)`` gather and the ``(rows, k, k)`` GEMM output,
    both bounded by ``tile_nnz · k`` elements; index/mask arrays add
    ``tile_nnz`` int64/int64/bool/compute entries.  The weighted
    (implicit) kernel adds one more ``tile_nnz · k`` operand (the
    weight-scaled gather) and the gathered weights themselves.  Tests
    assert the measured ``assembly.peak_tile_bytes`` gauge against this
    formula.
    """
    tile_nnz = _validate_tile(tile_nnz)
    cs = _validate_dtype(compute_dtype).itemsize
    gather = tile_nnz * k * cs  # G
    gemm_out = tile_nnz * k * cs  # (rows, k, k) with rows <= tile_nnz / k
    indices = tile_nnz * 16  # position + column gather, int64 each
    mask = tile_nnz * (1 + cs)  # bool validity + its compute-dtype cast
    bound = gather + gemm_out + indices + mask
    if weighted:
        bound += tile_nnz * k * cs  # Gw, the weight-scaled gather
        bound += 2 * tile_nnz * cs  # gathered weights + their masked copy
    return bound


def assemble_gram(Y: np.ndarray, cols: np.ndarray, lam: float) -> np.ndarray:
    """``Y_Ωᵀ Y_Ω + λI`` for one row's rated column set (the paper's smat)."""
    Y = _as_float(Y, np.float64)
    sub = Y[cols]
    G = sub.T @ sub
    d = _diag(Y.shape[1])
    G[d, d] += lam
    return G


def assemble_rhs(Y: np.ndarray, cols: np.ndarray, ratings: np.ndarray) -> np.ndarray:
    """``Y_Ωᵀ r_u`` for one row (the paper's svec)."""
    Y = _as_float(Y, np.float64)
    return Y[cols].T @ np.asarray(ratings, dtype=np.float64)


def _check_shapes(R: CSRMatrix, Y: np.ndarray) -> None:
    if Y.ndim != 2:
        raise ValueError(f"Y must be 2-D, got shape {Y.shape}")
    if Y.shape[0] != R.ncols:
        raise ValueError(f"Y must have {R.ncols} rows, got {Y.shape[0]}")


def _check_nnz_vector(v: np.ndarray | None, nnz: int, what: str) -> np.ndarray | None:
    if v is None:
        return None
    v = np.ascontiguousarray(v, dtype=np.float64)
    if v.shape != (nnz,):
        raise ValueError(f"{what} must have shape ({nnz},), got {v.shape}")
    return v


def _span_names(weighted: bool) -> tuple[str, str]:
    """Span names for the two assembly stages (implicit gets its own)."""
    if weighted:
        return "als.implicit.s1", "als.implicit.s2"
    return "als.s1.gram", "als.s2.rhs"


def scatter_normal_equations(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    *,
    nnz_weight: np.ndarray | None = None,
    rhs_nnz_value: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The legacy ``np.add.at`` assembly, kept as baseline and fallback.

    Materializes the full ``(nnz, k, k)`` outer-product tensor and
    scatter-adds it — memory and time both scale with ``nnz · k²``, which
    is exactly the pathology the binned path removes (and what
    ``benchmarks/bench_assembly.py`` measures it against).  With
    ``nnz_weight`` this is the retained SAC15-style implicit reference
    the parity tests and ``benchmarks/bench_implicit.py`` compare
    against.
    """
    Y = _as_float(Y, np.float64)
    m = R.nrows
    k = Y.shape[1]
    _check_shapes(R, Y)
    w = _check_nnz_vector(nnz_weight, R.nnz, "nnz_weight")
    rv = _check_nnz_vector(rhs_nnz_value, R.nnz, "rhs_nnz_value")
    s1_name, s2_name = _span_names(w is not None)
    rows = R.expanded_rows()
    # The paper's S1 (smat = Y_ΩᵀY_Ω + λI) and S2 (svec = Y_Ωᵀ r_u) run as
    # separate kernels; the spans keep that boundary so the measured
    # hotspot table decomposes the same way as Fig. 8.  The Y gather is
    # shared by both steps and attributed to S1, which reads it first.
    with span(s1_name, stage="S1", nnz=R.nnz, k=k, mode="scatter"):
        gathered = Y[R.col_idx]  # (nnz, k)
        outer = gathered[:, :, None] * gathered[:, None, :]  # (nnz, k, k)
        if w is not None:
            outer *= w[:, None, None]
        A = np.zeros((m, k, k), dtype=np.float64)
        np.add.at(A, rows, outer)
        d = _diag(k)
        A[:, d, d] += lam
    with span(s2_name, stage="S2", nnz=R.nnz, k=k, mode="scatter"):
        vals = R.value.astype(np.float64) if rv is None else rv
        b = np.zeros((m, k), dtype=np.float64)
        np.add.at(b, rows, gathered * vals[:, None])
    if is_enabled():
        obs_metrics.inc("assembly.scatter.calls")
    return A, b


def binned_normal_equations(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    *,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
    growth: float | None = None,
    nnz_weight: np.ndarray | None = None,
    rhs_nnz_value: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Degree-binned, nnz-tiled assembly of ``(smat, svec)`` for all rows.

    The Python analogue of the paper's thread batching: rows of equal
    (within ``growth``) degree form one bin, whose ratings gather into a
    dense ``(rows, width, k)`` block that a single batched GEMM reduces
    to per-row Gram matrices — no ``(nnz, k, k)`` intermediate, no
    ``np.add.at``.  Bins are split into tiles of at most ``tile_nnz``
    gathered non-zeros (rows per tile additionally capped by ``k`` so the
    GEMM output obeys the same budget), which bounds peak scratch the way
    the paper's local-memory blocking bounds a work-group's footprint.

    ``compute_dtype=float32`` runs the gathers and GEMMs in single
    precision (the paper's device arithmetic); the returned ``A``/``b``
    accumulate in float64 either way.

    ``nnz_weight`` turns the Gram sum into ``Σ w_e · y_e y_eᵀ`` by
    scaling one GEMM operand per tile — the padding mask folds into the
    weights, so the weighted kernel obeys the identical tile budget.
    """
    tile = _resolve_tile(tile_nnz)
    cdtype = _resolve_dtype(compute_dtype)
    growth = DEFAULT_BIN_GROWTH if growth is None else float(growth)
    Yc = _as_float(Y, cdtype)
    _check_shapes(R, Yc)
    m = R.nrows
    k = Yc.shape[1]
    w_all = _check_nnz_vector(nnz_weight, R.nnz, "nnz_weight")
    rv = _check_nnz_vector(rhs_nnz_value, R.nnz, "rhs_nnz_value")
    wc = None if w_all is None else w_all.astype(cdtype)
    s1_name, s2_name = _span_names(w_all is not None)
    enabled = is_enabled()
    peak_tile_bytes = 0
    tiles = 0
    with span(s1_name, stage="S1", nnz=R.nnz, k=k, mode="binned") as s1:
        # Bin building and the output allocation belong to S1's measured
        # cost (the bins are cached on R, so sweeps after the first get
        # them for free).
        bins = R.degree_bins(growth)
        s1.set(bins=len(bins))
        A = np.zeros((m, k, k), dtype=np.float64)
        for b_ in bins:
            width = b_.width
            rows_per_tile = max(1, tile // max(width, k))
            seg = min(width, tile)  # long-tail rows reduce in segments
            # No stage= attr here: the enclosing als.s1.gram span owns the
            # S1 attribution; bin spans only decompose it.
            with span(
                "als.s1.bin",
                width=width,
                rows=int(b_.rows.size),
                nnz=b_.nnz,
            ):
                for r0 in range(0, b_.rows.size, rows_per_tile):
                    r1 = min(r0 + rows_per_tile, b_.rows.size)
                    rows_t = b_.rows[r0:r1]
                    starts_t = b_.starts[r0:r1]
                    len_t = b_.lengths[r0:r1]
                    acc = None
                    for w0 in range(0, width, seg):
                        w1 = min(w0 + seg, width)
                        offs = np.arange(w0, w1, dtype=np.int64)
                        idx = starts_t[:, None] + offs[None, :]
                        tile_bytes = idx.nbytes
                        # Rows shorter than this segment's end need their
                        # padding masked out of the gather (degrees are
                        # ascending, so the first row is the shortest).
                        if w1 > int(len_t[0]):
                            valid = offs[None, :] < len_t[:, None]
                            idx = np.where(valid, idx, starts_t[:, None])
                            vmask = valid.astype(cdtype)
                            tile_bytes += valid.nbytes + vmask.nbytes
                        else:
                            vmask = None
                        cols = R.col_idx[idx]
                        G = Yc[cols]
                        if wc is None:
                            if vmask is not None:
                                G *= vmask[:, :, None]
                            contrib = G.transpose(0, 2, 1) @ G
                            tile_bytes += cols.nbytes + G.nbytes + contrib.nbytes
                        else:
                            # Gᵀ diag(w) G: scale one operand by the tile's
                            # weights; padding lanes zero out through the
                            # mask folded into the weights, so the second
                            # operand can stay unmasked.
                            wt = wc[idx]
                            if vmask is not None:
                                wt = wt * vmask
                            Gw = G * wt[:, :, None]
                            contrib = Gw.transpose(0, 2, 1) @ G
                            tile_bytes += (
                                cols.nbytes + G.nbytes + Gw.nbytes
                                + wt.nbytes + contrib.nbytes
                            )
                        if acc is None:
                            # Cross-segment accumulation (width > seg, so
                            # one row per tile) happens in float64 even in
                            # float32 compute mode; single-segment tiles
                            # upcast once on assignment into A below.
                            acc = contrib if width <= seg else contrib.astype(np.float64)
                        else:
                            acc += contrib
                        tiles += 1
                        if tile_bytes > peak_tile_bytes:
                            peak_tile_bytes = tile_bytes
                    A[rows_t] = acc
        d = _diag(k)
        A[:, d, d] += lam
    with span(s2_name, stage="S2", nnz=R.nnz, k=k, mode="binned"):
        # S2 is exactly the sparse product R @ Y (with the per-nnz RHS
        # coefficients substituted for the stored values when given);
        # matmat's bincount segment-sum does it in k C-speed passes with
        # O(nnz) scratch.
        b = R.matmat(Yc, values=rv)
    if enabled:
        obs_metrics.set_gauge("assembly.bins", len(bins))
        obs_metrics.set_gauge("assembly.peak_tile_bytes", peak_tile_bytes)
        if w_all is not None:
            obs_metrics.set_gauge("assembly.implicit.peak_tile_bytes", peak_tile_bytes)
        obs_metrics.inc("assembly.tiles", tiles)
        obs_metrics.inc("assembly.binned.calls")
    return A, b


def batched_normal_equations(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    *,
    mode: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
    nnz_weight: np.ndarray | None = None,
    rhs_nnz_value: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble ``(smat, svec)`` for every row of ``R`` at once.

    Returns ``A`` of shape (m, k, k) and ``b`` of shape (m, k).  Rows with
    no ratings get ``A = λI`` and ``b = 0`` so downstream batched solvers
    stay regular; the ALS driver leaves such rows at zero, matching
    Algorithm 2's ``omegaSize > 0`` guard.

    ``mode`` picks the code variant (``binned``/``scatter``/``auto``);
    unset knobs fall back to :func:`configure_assembly`, then the
    ``REPRO_ASSEMBLY``/``REPRO_TILE_NNZ``/``REPRO_ASSEMBLY_DTYPE``
    environment, then the built-in defaults.  ``nnz_weight`` /
    ``rhs_nnz_value`` select the confidence-weighted (implicit) kernel;
    the ``auto`` selector measures the weighted variants in that case.
    """
    resolved = _resolve_mode(mode)
    if resolved == "auto":
        from repro.autotune.assembly import select_assembly

        resolved = select_assembly(
            R, int(np.asarray(Y).shape[-1]), weighted=nnz_weight is not None
        )
    if resolved == "scatter":
        return scatter_normal_equations(
            R, Y, lam, nnz_weight=nnz_weight, rhs_nnz_value=rhs_nnz_value
        )
    return binned_normal_equations(
        R, Y, lam, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
        nnz_weight=nnz_weight, rhs_nnz_value=rhs_nnz_value,
    )


def complement_predictions(
    R: CSRMatrix,
    X_rows: np.ndarray,
    Y: np.ndarray,
    start: int,
    stop: int,
    *,
    tile_nnz: int | None = None,
) -> np.ndarray:
    """Per-non-zero predictions over the *complement* of a column block.

    For every stored entry ``(u, i)`` of ``R`` returns

        p̄_e = Σ_{j ∉ [start, stop)} X_rows[u, j] · Y[i, j]

    — the part of the model prediction contributed by the factor
    coordinates a subspace block update holds fixed.  Subtracting it from
    the residual target turns the block right-hand side into exactly the
    ``rhs_nnz_value`` hook of the assembly kernels, so iALS++ block
    coordinate descent rides the same binned/tiled machinery as the full
    sweep.

    The nnz axis is chunked so the gathered complement scratch stays
    under the configured tile budget (``chunk · (k - d)`` values per
    operand).  Accumulation is float64; each output element is an
    independent reduction over its own complement lane, so chunk
    boundaries (and therefore shard boundaries in the out-of-core path)
    do not perturb the result.
    """
    k = int(np.asarray(Y).shape[-1])
    if not (0 <= start < stop <= k):
        raise ValueError(f"block [{start}, {stop}) out of range for k={k}")
    out = np.zeros(R.nnz, dtype=np.float64)
    width = start + (k - stop)
    if width == 0 or R.nnz == 0:
        return out
    Xc = _as_float(X_rows, np.float64)
    Yc = _as_float(Y, np.float64)
    tile = _resolve_tile(tile_nnz)
    chunk = max(1, tile // width)
    rows_e = R.expanded_rows()
    cols_e = R.col_idx
    with span(
        "als.subspace.predict", stage="S2", nnz=R.nnz, k=k,
        block=stop - start,
    ):
        for c0 in range(0, R.nnz, chunk):
            c1 = min(c0 + chunk, R.nnz)
            u = rows_e[c0:c1]
            i = cols_e[c0:c1]
            acc = out[c0:c1]
            if start > 0:
                acc += np.einsum(
                    "ej,ej->e", Xc[u, :start], Yc[i, :start],
                    dtype=np.float64,
                )
            if stop < k:
                acc += np.einsum(
                    "ej,ej->e", Xc[u, stop:], Yc[i, stop:],
                    dtype=np.float64,
                )
    if is_enabled():
        obs_metrics.inc("subspace.predict.nnz", R.nnz)
    return out


class GramCache:
    """Dense Gramian ``FᵀF`` maintained under block-column updates.

    The implicit-feedback update needs the full ``k×k`` Gramian of the
    fixed factor every half-sweep.  Under subspace descent only ``d``
    columns of ``F`` change per block update, so the cache refreshes just
    the affected ``d`` rows/columns with one ``(d, m)·(m, k)`` GEMM —
    O(m·d·k) instead of the O(m·k²) full recompute.  Each refresh is an
    exact recomputation from the current ``F`` (no running accumulation),
    so the cached matrix never drifts from a fresh ``FᵀF`` beyond the
    per-block GEMM rounding.

    A full-width update falls back to a fresh recompute so the ``d == k``
    configuration stays bitwise-identical to the existing trainers.
    """

    def __init__(self, F: np.ndarray) -> None:
        self.k = int(np.asarray(F).shape[-1])
        self._gram = self._full(F)

    @staticmethod
    def _full(F: np.ndarray) -> np.ndarray:
        # Matches the implicit half-sweep's historical recompute
        # (ascontiguousarray + T @) operation-for-operation.
        Fc = np.ascontiguousarray(F, dtype=np.float64)
        return Fc.T @ Fc

    @property
    def matrix(self) -> np.ndarray:
        """The cached ``(k, k)`` Gramian (owned by the cache; do not mutate)."""
        return self._gram

    def refresh(self, F: np.ndarray) -> np.ndarray:
        """Recompute the full Gramian from scratch."""
        self._gram = self._full(F)
        if is_enabled():
            obs_metrics.inc("gram.full_refreshes")
        return self._gram

    def update_block(self, F: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Refresh rows/columns ``[start, stop)`` after those columns of
        ``F`` changed; every other entry of the Gramian is untouched by a
        block-column update and keeps its cached value."""
        if not (0 <= start < stop <= self.k):
            raise ValueError(
                f"block [{start}, {stop}) out of range for k={self.k}"
            )
        if start == 0 and stop == self.k:
            return self.refresh(F)
        Fc = np.ascontiguousarray(F, dtype=np.float64)
        slab = Fc[:, start:stop].T @ Fc  # (d, k): new rows of the Gramian
        self._gram[:, start:stop] = slab.T
        self._gram[start:stop, :] = slab
        if is_enabled():
            obs_metrics.inc("gram.block_updates")
        return self._gram
