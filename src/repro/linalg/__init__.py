"""Dense linear-algebra substrate implemented from scratch.

The paper's step S3 factorizes the k×k normal-equation matrix
``smat = YᵀY + λI`` with the Cholesky method and solves ``L Lᵀ x = svec``
(Algorithm 2, lines 16–17).  This package provides that factorization —
scalar and batched — plus the normal-equation assembly used by the
reference solver, and a Gaussian-elimination solver kept as the comparison
point for the paper's §V-C Cholesky claim.
"""

from repro.linalg.cholesky import (
    CholeskyError,
    as_float64_stack,
    cholesky_factor,
    cholesky_solve,
    batched_cholesky_factor,
    batched_cholesky_solve,
    forward_substitution,
    backward_substitution,
)
from repro.linalg.gaussian import gaussian_solve, batched_gaussian_solve
from repro.linalg.solvers import (
    SOLVER_MODES,
    SOLVERS,
    batched_lapack_solve,
    lapack_cholesky_factor,
    configure_solver,
    resolve_solver,
    solver_fn,
)
from repro.linalg.normal_equations import (
    assemble_gram,
    assemble_rhs,
    assembly_defaults,
    batched_normal_equations,
    binned_normal_equations,
    configure_assembly,
    scatter_normal_equations,
    tile_bytes_bound,
)

__all__ = [
    "CholeskyError",
    "as_float64_stack",
    "SOLVER_MODES",
    "SOLVERS",
    "batched_lapack_solve",
    "lapack_cholesky_factor",
    "configure_solver",
    "resolve_solver",
    "solver_fn",
    "cholesky_factor",
    "cholesky_solve",
    "batched_cholesky_factor",
    "batched_cholesky_solve",
    "forward_substitution",
    "backward_substitution",
    "gaussian_solve",
    "batched_gaussian_solve",
    "assemble_gram",
    "assemble_rhs",
    "assembly_defaults",
    "batched_normal_equations",
    "binned_normal_equations",
    "configure_assembly",
    "scatter_normal_equations",
    "tile_bytes_bound",
]
