"""Other matrix-factorization solvers (the paper's §VII future work).

"We will ... extend our technique to other matrix factorization solvers
such as SGD."  This package implements the two solver families the
paper's related-work section surveys alongside ALS:

* :mod:`repro.extensions.sgd` — stochastic gradient descent with the
  Hogwild-style unsynchronized update order [27] the paper cites;
* :mod:`repro.extensions.ccd` — CCD++ rank-one cyclic coordinate descent
  (Yu et al. [2]).

Both share the rating substrate and metrics of :mod:`repro.core`, so the
three families can be compared head-to-head (see
``examples/solver_families.py``).
"""

from repro.extensions.sgd import SGDConfig, SGDModel, train_sgd
from repro.extensions.ccd import CCDConfig, CCDModel, train_ccd

__all__ = [
    "SGDConfig",
    "SGDModel",
    "train_sgd",
    "CCDConfig",
    "CCDModel",
    "train_ccd",
]
