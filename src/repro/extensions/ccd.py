"""CCD++ — cyclic coordinate descent with rank-one updates (Yu et al. [2]).

CCD++ sweeps the k latent dimensions one at a time: for dimension t it
peels the rank-one term ``x_t y_tᵀ`` out of the residual, then alternates
closed-form scalar updates

    x_ut = Σ_i∈Ω_u (res_ui y_it) / (λ + Σ y_it²)

(and symmetrically for y) before folding the updated rank-one term back.
Every inner update is an exact 1-D minimizer, so the objective (Eq. 2)
descends monotonically — the same property the ALS tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loss import regularized_loss
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["CCDConfig", "CCDModel", "train_ccd"]


@dataclass(frozen=True)
class CCDConfig:
    """Hyper-parameters of the CCD++ solver."""

    k: int = 10
    lam: float = 0.1
    outer_iterations: int = 5  # full sweeps over all k dimensions
    inner_iterations: int = 3  # x/y alternations per dimension (the "++")
    seed: int = 0
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.outer_iterations <= 0 or self.inner_iterations <= 0:
            raise ValueError("k and iteration counts must be positive")
        if self.lam <= 0:
            raise ValueError("lam must be positive")


@dataclass
class CCDModel:
    X: np.ndarray
    Y: np.ndarray
    config: CCDConfig
    history: list[float] = field(default_factory=list)  # loss per outer iter


def _coordinate_update(
    rows: np.ndarray,
    other: np.ndarray,
    residual: np.ndarray,
    w_other: np.ndarray,
    count: int,
    lam: float,
) -> np.ndarray:
    """Closed-form rank-one coordinate update for one side.

    ``rows``/``other`` index the non-zeros; returns the new weights for
    the ``rows`` side given the ``other`` side's weights ``w_other``.
    """
    num = np.zeros(count)
    den = np.full(count, lam)
    np.add.at(num, rows, residual * w_other[other])
    np.add.at(den, rows, w_other[other] ** 2)
    return num / den


def train_ccd(ratings: COOMatrix, config: CCDConfig | None = None) -> CCDModel:
    """Factorize by CCD++ rank-one sweeps."""
    config = config or CCDConfig()
    coo = CSRMatrix.from_coo(ratings.deduplicate()).to_coo()  # row-major order
    m, n = coo.shape
    rng = np.random.default_rng(config.seed)
    X = np.zeros((m, config.k))
    Y = rng.uniform(-config.init_scale, config.init_scale, (n, config.k))

    rows, cols = coo.row, coo.col
    # Residual of the *full* model on the observed entries.
    residual = coo.value.astype(np.float64) - np.einsum(
        "bk,bk->b", X[rows], Y[cols]
    )
    model = CCDModel(X=X, Y=Y, config=config)
    for _ in range(config.outer_iterations):
        for t in range(config.k):
            xt, yt = X[:, t].copy(), Y[:, t].copy()
            # Peel this dimension's rank-one term out of the residual.
            residual += xt[rows] * yt[cols]
            for _ in range(config.inner_iterations):
                xt = _coordinate_update(rows, cols, residual, yt, m, config.lam)
                yt = _coordinate_update(cols, rows, residual, xt, n, config.lam)
            # Fold the refreshed term back in.
            residual -= xt[rows] * yt[cols]
            X[:, t], Y[:, t] = xt, yt
        model.history.append(regularized_loss(coo, X, Y, config.lam))
    return model
