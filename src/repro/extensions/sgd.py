"""Stochastic gradient descent matrix factorization.

Minimizes the same objective as ALS (Eq. 2) by per-rating updates

    e   = r_ui − x_u·y_i
    x_u += lr · (e·y_i − λ·x_u)
    y_i += lr · (e·x_u − λ·y_i)

The update order is a fresh random permutation per epoch — the Hogwild
regime the paper cites [27] processes ratings in arbitrary unsynchronized
order, which a sequential implementation models exactly (any interleaving
is a valid Hogwild schedule, and a permutation is one such interleaving).

The per-rating loop is vectorized in *conflict-free batches*: a batch of
ratings that touches each user and each item at most once updates all its
factor rows simultaneously — exactly equivalent to processing the batch
sequentially, because no two updates in it read or write the same row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loss import regularized_loss
from repro.sparse.coo import COOMatrix

__all__ = ["SGDConfig", "SGDModel", "train_sgd", "conflict_free_batches"]


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters of the SGD solver."""

    k: int = 10
    lam: float = 0.1
    lr: float = 0.01
    lr_decay: float = 0.9  # per-epoch multiplicative decay
    epochs: int = 20
    seed: int = 0
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.epochs <= 0:
            raise ValueError("k and epochs must be positive")
        if self.lr <= 0 or not 0 < self.lr_decay <= 1:
            raise ValueError("lr must be positive and lr_decay in (0, 1]")
        if self.lam < 0:
            raise ValueError("lam must be non-negative")


@dataclass
class SGDModel:
    X: np.ndarray
    Y: np.ndarray
    config: SGDConfig
    history: list[float] = field(default_factory=list)  # loss per epoch


def conflict_free_batches(
    rows: np.ndarray, cols: np.ndarray, order: np.ndarray
) -> list[np.ndarray]:
    """Partition ``order`` into batches with unique users and items each.

    Each round takes the ratings that are the *first occurrence* of both
    their user and their item among the remaining ratings — a vectorized
    subset of the greedy maximal batch.  Batches stay conflict-free, so a
    one-shot vectorized update of a batch is exactly equivalent to
    processing it sequentially.
    """
    batches: list[np.ndarray] = []
    remaining = order
    while remaining.size:
        r = rows[remaining]
        c = cols[remaining]
        first_u = np.zeros(remaining.size, dtype=bool)
        first_u[np.unique(r, return_index=True)[1]] = True
        first_i = np.zeros(remaining.size, dtype=bool)
        first_i[np.unique(c, return_index=True)[1]] = True
        take = first_u & first_i
        if not take.any():  # cannot happen: position 0 is first for both
            raise AssertionError("conflict-free batching stalled")
        batches.append(remaining[take])
        remaining = remaining[~take]
    return batches


def train_sgd(ratings: COOMatrix, config: SGDConfig | None = None) -> SGDModel:
    """Factorize by SGD over shuffled conflict-free batches."""
    config = config or SGDConfig()
    coo = ratings.deduplicate()
    m, n = coo.shape
    rng = np.random.default_rng(config.seed)
    # Unlike ALS, SGD needs both factor matrices non-zero at the start.
    X = rng.uniform(-config.init_scale, config.init_scale, (m, config.k))
    Y = rng.uniform(-config.init_scale, config.init_scale, (n, config.k))

    rows, cols = coo.row, coo.col
    values = coo.value.astype(np.float64)
    model = SGDModel(X=X, Y=Y, config=config)
    lr = config.lr
    for _ in range(config.epochs):
        order = rng.permutation(coo.nnz)
        for batch in conflict_free_batches(rows, cols, order):
            u = rows[batch]
            i = cols[batch]
            xu = X[u]
            yi = Y[i]
            err = values[batch] - np.einsum("bk,bk->b", xu, yi)
            X[u] = xu + lr * (err[:, None] * yi - config.lam * xu)
            Y[i] = yi + lr * (err[:, None] * xu - config.lam * yi)
        lr *= config.lr_decay
        model.history.append(regularized_loss(coo, X, Y, config.lam))
    return model
