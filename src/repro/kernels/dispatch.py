"""Kernel selection and interpreted execution of one half-sweep.

``interpreted_half_sweep`` is the ground-truth path: it runs the actual
work-item kernels of the selected variant through the barrier-accurate
interpreter.  It is used by the tests (and small demos); solvers use the
equivalent vectorized fast path.
"""

from __future__ import annotations

import numpy as np

from repro.clsim.costmodel import OptFlags
from repro.clsim.interpreter import execute_ndrange
from repro.clsim.kernel import Kernel
from repro.clsim.memory import Buffer
from repro.clsim.ndrange import NDRange
from repro.kernels.baseline import flat_update_kernel
from repro.kernels.batched import make_s1_kernel, make_s2_kernel, make_s3_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["select_kernels", "interpreted_half_sweep", "colmajor_permutation"]


def select_kernels(flags: OptFlags, tile: int) -> tuple[Kernel, Kernel, Kernel]:
    """The (S1, S2, S3) kernel trio implementing a batched variant."""
    if not flags.batched:
        raise ValueError("the flat baseline is a single fused kernel")
    s1 = make_s1_kernel(flags.registers, flags.local_mem, flags.vector, tile)
    s2 = make_s2_kernel(flags.local_mem, flags.vector, tile)
    s3 = make_s3_kernel(flags.cholesky)
    return s1, s2, s3


def colmajor_permutation(R: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """SAC15's ``colMajored_sparse_id`` structure (Algorithm 2 line 10).

    Returns ``(value_colmajor, colmajor_id)``: the value array reordered
    column-major and, for each CSR position, the index of its value in
    that column-major array.
    """
    csc = CSCMatrix.from_csr(R)
    # Position of each (row, col) pair in the column-major ordering.
    rows = R.expanded_rows()
    order = np.lexsort((rows, R.col_idx))  # CSR positions in CSC order
    colmajor_id = np.empty(R.nnz, dtype=np.int64)
    colmajor_id[order] = np.arange(R.nnz)
    value_colmajor = R.value[order]
    # Internal consistency: dereferencing must reproduce the CSR values.
    assert np.array_equal(value_colmajor[colmajor_id], R.value)
    del csc
    return value_colmajor, colmajor_id


def interpreted_half_sweep(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    flags: OptFlags,
    ws: int = 8,
    tile: int = 16,
    X_prev: np.ndarray | None = None,
    count_access: bool = False,
    n_groups: int | None = None,
) -> np.ndarray | tuple[np.ndarray, dict[str, int]]:
    """Run one half-sweep through the work-item interpreter.

    ``n_groups`` launches fewer groups than rows (the paper's persistent
    8192×32 configuration); each group then strides over the rows it
    owns.  Returns the updated factor matrix (float32 on-device
    precision); with ``count_access`` also returns per-buffer
    global-memory read counts.
    """
    m = R.nrows
    k = Y.shape[1]
    Y_flat = Buffer(np.ascontiguousarray(Y, dtype=np.float32).reshape(-1), "Y")
    X = np.zeros((m, k), dtype=np.float32)
    if X_prev is not None:
        X[:] = X_prev
    X_buf = Buffer(X, "X")
    value = Buffer(R.value, "value")
    col_idx = Buffer(R.col_idx, "col_idx")
    row_ptr = Buffer(R.row_ptr, "row_ptr")

    if flags.batched:
        smat = Buffer(np.zeros((m, k, k), dtype=np.float64), "smat")
        svec = Buffer(np.zeros((m, k), dtype=np.float64), "svec")
        args = dict(
            value=value,
            col_idx=col_idx,
            row_ptr=row_ptr,
            Y=Y_flat,
            smat=smat,
            svec=svec,
            X=X_buf,
            k=k,
            lam=lam,
        )
        groups = m if n_groups is None else min(n_groups, m)
        if groups <= 0:
            raise ValueError("n_groups must be positive")
        ndrange = NDRange(global_size=groups * ws, local_size=ws)
        for stage, kernel in zip(("S1", "S2", "S3"), select_kernels(flags, tile)):
            with span(f"kernel.{kernel.name}", cat="kernel", stage=stage, ws=ws):
                obs_metrics.inc("kernel.launches")
                execute_ndrange(kernel, ndrange, args)
    else:
        value_cm, cm_id = colmajor_permutation(R)
        args = dict(
            value_colmajor=Buffer(value_cm, "value_colmajor"),
            colmajor_id=Buffer(cm_id, "colmajor_id"),
            col_idx=col_idx,
            row_ptr=row_ptr,
            Y=Y_flat,
            X=X_buf,
            k=k,
            lam=lam,
            cholesky=flags.cholesky,
        )
        # One thread per row, padded to a multiple of the group size.
        padded = -(-m // ws) * ws
        kernel = flat_update_kernel()
        with span(f"kernel.{kernel.name}", cat="kernel", ws=ws):
            obs_metrics.inc("kernel.launches")
            execute_ndrange(kernel, NDRange(global_size=padded, local_size=ws), args)

    if count_access:
        counts = {
            "Y_reads": Y_flat.counter.reads,
            "value_reads": value.counter.reads,
            "col_idx_reads": col_idx.counter.reads,
        }
        return X_buf.array, counts
    return X_buf.array
