"""OpenCL C source generation for the ALS kernels.

The paper's deliverable is OpenCL 1.2 source whose optimizations can be
enabled "in an easy way" (§I).  This module emits that source: one
program per code variant, composed from the same building blocks the
simulated kernels implement — so the repository documents *exactly* what
would run on real devices, and the simulator's kernels can be audited
against it.

The latent factor K, work-group size WS and staging tile TILE are baked
in as compile-time constants (standard OpenCL practice — it lets the
compiler fully unroll the k-loops, which is precisely what the register
variant of Fig. 3(b) relies on).

The generated code is valid OpenCL C; it cannot be *compiled* in this
repository (no OpenCL runtime), but its structure is unit-tested
(tests/kernels/test_opencl_source.py) and it mirrors the interpreter
kernels one-to-one.
"""

from __future__ import annotations

import textwrap

from repro.clsim.costmodel import OptFlags

__all__ = ["generate_program", "generate_s1", "generate_s2", "generate_s3", "generate_flat"]


def _header(k: int, ws: int, tile: int) -> str:
    return textwrap.dedent(
        f"""\
        /* ALS matrix factorization — generated code variant.
         * K latent factors, WS work-items per group, TILE staged rows.
         * One work-group updates one row of X (thread batching, paper
         * section III-B); kernels s1/s2/s3 implement the three steps of
         * Algorithm 2.
         */
        #define K {k}
        #define WS {ws}
        #define TILE {tile}
        """
    )


def generate_s1(flags: OptFlags) -> str:
    """S1: smat = Y_omega^T * Y_omega + lambda*I for the group's row."""
    lines: list[str] = []
    w = lines.append
    w("__kernel void als_s1(")
    w("    __global const float *value,")
    w("    __global const int   *col_idx,")
    w("    __global const int   *row_ptr,")
    w("    __global const float *Y,")
    w("    __global float       *smat,")
    if flags.local_mem:
        w("    __local  float       *ystage,   /* TILE * K floats */")
    w("    const int m,")
    w("    const float lambda_)")
    w("{")
    w("    const int lx = get_local_id(0);")
    w("    /* persistent groups: the paper launches 8192 groups and each")
    w("     * strides over the rows it owns (thread config 8192 x WS). */")
    w("    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {")
    w("    const int lo = row_ptr[u];")
    w("    const int omega = row_ptr[u + 1] - lo;")
    w("    if (omega == 0) continue;")
    w("")
    if flags.registers:
        # Fig. 3(b): one k-strip of scalar accumulators per owned i.
        w("    /* Fig. 3(b): K scalar accumulators per owned i-strip — small")
        w("     * enough for the compiler to keep in registers; no k*k")
        w("     * private array, no spill.  NSTRIP is 1 whenever WS >= K,")
        w("     * the regime the paper recommends (section V-E). */")
        w("    #define NSTRIP ((K + WS - 1) / WS)")
        w("    float sums[NSTRIP][K];")
        w("    #pragma unroll")
        w("    for (int p = 0; p < NSTRIP; ++p)")
        w("        for (int j = 0; j < K; ++j) sums[p][j] = 0.0f;")
    else:
        w("    /* Fig. 3(a): private k*k accumulator array — spills for")
        w("     * K*K floats beyond the register budget (section III-C1). */")
        w("    float sum[K * K];")
        w("    for (int p = 0; p < K * K; ++p) sum[p] = 0.0f;")
    w("")
    if flags.local_mem:
        w("    for (int t0 = 0; t0 < omega; t0 += TILE) {")
        w("        const int tlen = min(TILE, omega - t0);")
        w("        /* cooperative, coalesced staging of the needed Y columns")
        w("         * (Fig. 5) */")
        w("        for (int idx = lx; idx < tlen * K; idx += WS) {")
        w("            const int z = idx / K, c = idx % K;")
        w("            ystage[z * K + c] = Y[col_idx[lo + t0 + z] * K + c];")
        w("        }")
        w("        barrier(CLK_LOCAL_MEM_FENCE);")
        body_z = "tlen"
        load = "ystage[z * K + %s]"
        indent = "        "
    else:
        w("    {")
        w("        const int t0 = 0;")
        body_z = "omega"
        load = "Y[d + %s]"
        indent = "        "
    w(f"{indent}for (int z = 0; z < {body_z}; ++z) {{")
    if not flags.local_mem:
        w(f"{indent}    const int d = col_idx[lo + t0 + z] * K;")
    if flags.registers:
        w(f"{indent}    int strip = 0;")
        w(f"{indent}    for (int i = lx; i < K; i += WS, ++strip) {{")
        w(f"{indent}        const float yi = {load % 'i'};")
        if flags.vector:
            w(f"{indent}        /* explicit vectorization (section III-C3):")
            w(f"{indent}         * process the j-strip with floatN ops. */")
            w(f"{indent}        for (int j = 0; j + 4 <= K; j += 4) {{")
            base = "&ystage[z * K + j]" if flags.local_mem else "&Y[d + j]"
            w(f"{indent}            float4 yv = vload4(0, {base});")
            w(f"{indent}            float4 sv = vload4(0, &sums[strip][j]);")
            w(f"{indent}            vstore4(sv + yi * yv, 0, &sums[strip][j]);")
            w(f"{indent}        }}")
            w(f"{indent}        for (int j = K & ~3; j < K; ++j)")
            w(f"{indent}            sums[strip][j] += yi * {load % 'j'};")
        else:
            w(f"{indent}        #pragma unroll")
            w(f"{indent}        for (int j = 0; j < K; ++j)")
            w(f"{indent}            sums[strip][j] += yi * {load % 'j'};")
        w(f"{indent}    }}")
    elif flags.vector:
        w(f"{indent}    /* explicit vectorization (section III-C3): the")
        w(f"{indent}     * j-strip is contiguous, so floatN ops apply. */")
        w(f"{indent}    for (int i = lx; i < K; i += WS) {{")
        w(f"{indent}        const float yi = {load % 'i'};")
        w(f"{indent}        int j = i;")
        w(f"{indent}        for (; j + 4 <= K; j += 4) {{")
        base = "&ystage[z * K + j]" if flags.local_mem else "&Y[d + j]"
        w(f"{indent}            float4 yv = vload4(0, {base});")
        w(f"{indent}            float4 sv = vload4(0, &sum[i * K + j]);")
        w(f"{indent}            vstore4(sv + yi * yv, 0, &sum[i * K + j]);")
        w(f"{indent}        }}")
        w(f"{indent}        for (; j < K; ++j)")
        w(f"{indent}            sum[i * K + j] += yi * {load % 'j'};")
        w(f"{indent}    }}")
    else:
        w(f"{indent}    for (int i = lx; i < K; i += WS)")
        w(f"{indent}        for (int j = i; j < K; ++j)")
        w(f"{indent}            sum[i * K + j] += {load % 'i'} * {load % 'j'};")
    w(f"{indent}}}")
    if flags.local_mem:
        w("        barrier(CLK_LOCAL_MEM_FENCE); /* tile reuse */")
    w("    }")
    w("")
    if flags.registers:
        w("    int out_strip = 0;")
        w("    for (int i = lx; i < K; i += WS, ++out_strip)")
        w("        for (int j = 0; j < K; ++j)")
        w("            smat[(u * K + i) * K + j] =")
        w("                sums[out_strip][j] + (i == j ? lambda_ : 0.0f);")
    else:
        w("    for (int i = lx; i < K; i += WS)")
        w("        for (int j = i; j < K; ++j) {")
        w("            const float v = sum[i * K + j] + (i == j ? lambda_ : 0.0f);")
        w("            smat[(u * K + i) * K + j] = v;")
        w("            smat[(u * K + j) * K + i] = v;")
        w("        }")
    w("    } /* persistent-group row loop */")
    if flags.registers:
        w("    #undef NSTRIP")
    w("}")
    return "\n".join(lines)


def generate_s2(flags: OptFlags) -> str:
    """S2: svec = Y_omega^T * r_u (Algorithm 2 lines 8-15)."""
    lines: list[str] = []
    w = lines.append
    w("__kernel void als_s2(")
    w("    __global const float *value,")
    w("    __global const int   *col_idx,")
    w("    __global const int   *row_ptr,")
    w("    __global const float *Y,")
    w("    __global float       *svec,")
    if flags.local_mem:
        w("    __local  float       *ystage,   /* TILE * K floats */")
        w("    __local  float       *rstage,   /* TILE floats */")
    w("    const int m)")
    w("{")
    w("    const int lx = get_local_id(0);")
    w("    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {")
    w("    const int lo = row_ptr[u];")
    w("    const int omega = row_ptr[u + 1] - lo;")
    w("    if (omega == 0) continue;")
    w("    float acc[(K + WS - 1) / WS];")
    w("    for (int p = 0; p < (K + WS - 1) / WS; ++p) acc[p] = 0.0f;")
    if flags.local_mem:
        w("    for (int t0 = 0; t0 < omega; t0 += TILE) {")
        w("        const int tlen = min(TILE, omega - t0);")
        w("        for (int idx = lx; idx < tlen * K; idx += WS) {")
        w("            const int z = idx / K, c = idx % K;")
        w("            ystage[z * K + c] = Y[col_idx[lo + t0 + z] * K + c];")
        w("        }")
        w("        for (int z = lx; z < tlen; z += WS)")
        w("            rstage[z] = value[lo + t0 + z];")
        w("        barrier(CLK_LOCAL_MEM_FENCE);")
        w("        int strip = 0;")
        w("        for (int c = lx; c < K; c += WS, ++strip)")
        w("            for (int z = 0; z < tlen; ++z)")
        w("                acc[strip] += rstage[z] * ystage[z * K + c];")
        w("        barrier(CLK_LOCAL_MEM_FENCE);")
        w("    }")
    else:
        w("    /* unstaged: Y[col*K + c] strides by K between consecutive z —")
        w("     * every access is a scattered scalar (section III-C2). */")
        w("    int strip = 0;")
        w("    for (int c = lx; c < K; c += WS, ++strip)")
        w("        for (int z = 0; z < omega; ++z)")
        w("            acc[strip] += value[lo + z] * Y[col_idx[lo + z] * K + c];")
    w("    int out_strip = 0;")
    w("    for (int c = lx; c < K; c += WS, ++out_strip)")
    w("        svec[u * K + c] = acc[out_strip];")
    w("    } /* persistent-group row loop */")
    w("}")
    return "\n".join(lines)


def generate_s3(flags: OptFlags) -> str:
    """S3: solve smat * x = svec per row (Cholesky or elimination)."""
    lines: list[str] = []
    w = lines.append
    w("__kernel void als_s3(")
    w("    __global const int   *row_ptr,")
    w("    __global const float *smat,")
    w("    __global const float *svec,")
    w("    __global float       *X,")
    w("    const int m)")
    w("{")
    w("    if (get_local_id(0) != 0) return;")
    w("    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {")
    w("    if (row_ptr[u + 1] - row_ptr[u] == 0) continue;")
    w("    float a[K][K], b[K];")
    w("    for (int i = 0; i < K; ++i) {")
    w("        b[i] = svec[u * K + i];")
    w("        for (int j = 0; j < K; ++j)")
    w("            a[i][j] = smat[(u * K + i) * K + j];")
    w("    }")
    if flags.cholesky:
        w("    /* Cholesky a = L L^T (section V-C's optimized S3). */")
        w("    for (int j = 0; j < K; ++j) {")
        w("        float d = a[j][j];")
        w("        for (int p = 0; p < j; ++p) d -= a[j][p] * a[j][p];")
        w("        a[j][j] = sqrt(d);")
        w("        for (int i = j + 1; i < K; ++i) {")
        w("            float s = a[i][j];")
        w("            for (int p = 0; p < j; ++p) s -= a[i][p] * a[j][p];")
        w("            a[i][j] = s / a[j][j];")
        w("        }")
        w("    }")
        w("    float z[K];")
        w("    for (int i = 0; i < K; ++i) {")
        w("        float s = b[i];")
        w("        for (int p = 0; p < i; ++p) s -= a[i][p] * z[p];")
        w("        z[i] = s / a[i][i];")
        w("    }")
        w("    for (int i = K - 1; i >= 0; --i) {")
        w("        float s = z[i];")
        w("        for (int p = i + 1; p < K; ++p) s -= a[p][i] * b[p];")
        w("        b[i] = s / a[i][i];")
        w("    }")
    else:
        w("    /* Plain Gaussian elimination (pre-optimization S3). */")
        w("    for (int col = 0; col < K; ++col) {")
        w("        for (int r = col + 1; r < K; ++r) {")
        w("            const float f = a[r][col] / a[col][col];")
        w("            for (int c = col; c < K; ++c) a[r][c] -= f * a[col][c];")
        w("            b[r] -= f * b[col];")
        w("        }")
        w("    }")
        w("    for (int i = K - 1; i >= 0; --i) {")
        w("        float s = b[i];")
        w("        for (int p = i + 1; p < K; ++p) s -= a[i][p] * b[p];")
        w("        b[i] = s / a[i][i];")
        w("    }")
    w("    for (int c = 0; c < K; ++c) X[u * K + c] = b[c];")
    w("    } /* persistent-group row loop */")
    w("}")
    return "\n".join(lines)


def generate_flat() -> str:
    """The SAC15-style flat baseline: one work-item per row (Algorithm 2)."""
    return textwrap.dedent(
        """\
        __kernel void als_update_flat(
            __global const float *value_colmajor,
            __global const int   *colmajor_id,
            __global const int   *col_idx,
            __global const int   *row_ptr,
            __global const float *Y,
            __global float       *X,
            const int m,
            const float lambda_)
        {
            const int u = get_global_id(0);
            if (u >= m) return;
            const int lo = row_ptr[u];
            const int omega = row_ptr[u + 1] - lo;
            if (omega == 0) return;
            /* private k*k scratch: neighbouring threads' accesses sit
             * (K+1)*K elements apart -> uncoalesced (section III-B). */
            float smat[K * K], svec[K];
            for (int p = 0; p < K * K; ++p) smat[p] = 0.0f;
            for (int c = 0; c < K; ++c) svec[c] = 0.0f;
            for (int i = 0; i < K; ++i)
                for (int j = i; j < K; ++j) {
                    float s = 0.0f;
                    for (int z = 0; z < omega; ++z) {
                        const int d = col_idx[lo + z] * K;
                        s += Y[d + i] * Y[d + j];
                    }
                    smat[i * K + j] = s; smat[j * K + i] = s;
                }
            for (int i = 0; i < K; ++i) smat[i * K + i] += lambda_;
            for (int c = 0; c < K; ++c)
                for (int z = 0; z < omega; ++z) {
                    const int idx  = lo + z;
                    const int idx2 = colmajor_id[idx];     /* line 10 */
                    svec[c] += value_colmajor[idx2] * Y[col_idx[idx] * K + c];
                }
            /* Cholesky solve in private memory (lines 16-17). */
            for (int j = 0; j < K; ++j) {
                float d = smat[j * K + j];
                for (int p = 0; p < j; ++p) d -= smat[j * K + p] * smat[j * K + p];
                smat[j * K + j] = sqrt(d);
                for (int i = j + 1; i < K; ++i) {
                    float s = smat[i * K + j];
                    for (int p = 0; p < j; ++p) s -= smat[i * K + p] * smat[j * K + p];
                    smat[i * K + j] = s / smat[j * K + j];
                }
            }
            float z[K];
            for (int i = 0; i < K; ++i) {
                float s = svec[i];
                for (int p = 0; p < i; ++p) s -= smat[i * K + p] * z[p];
                z[i] = s / smat[i * K + i];
            }
            for (int i = K - 1; i >= 0; --i) {
                float s = z[i];
                for (int p = i + 1; p < K; ++p) s -= smat[p * K + i] * svec[p];
                svec[i] = s / smat[i * K + i];
            }
            for (int c = 0; c < K; ++c) X[u * K + c] = svec[c];
        }
        """
    )


def generate_program(
    flags: OptFlags, k: int = 10, ws: int = 32, tile: int = 256
) -> str:
    """The full .cl program for one code variant (plus the flat baseline)."""
    if k <= 0 or ws <= 0 or tile <= 0:
        raise ValueError("k, ws and tile must be positive")
    parts = [
        _header(k, ws, tile),
        f"/* variant: {flags.label()} */",
        "",
        generate_s1(flags),
        "",
        generate_s2(flags),
        "",
        generate_s3(flags),
        "",
        generate_flat(),
    ]
    return "\n".join(parts)
