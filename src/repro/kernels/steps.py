"""Hotspot-guided step decomposition (§V-C, Fig. 8).

The paper tunes the three ALS steps one at a time: starting from the
baseline it applies thread batching everywhere, then optimizes S1 with
registers + local memory, then S2 with local-memory staging, and finally
S3 with the Cholesky method.  Because the steps run as separate kernels,
a mixed configuration's cost is the composition of per-step costs — which
is what :func:`profile_steps` computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.costmodel import CostModel, OptFlags, StepCosts

__all__ = ["StepProfile", "mixed_step_costs", "profile_steps", "FIG8_STAGES"]


@dataclass(frozen=True)
class StepProfile:
    """Absolute seconds and shares of S1/S2/S3 for one configuration."""

    label: str
    s1_seconds: float
    s2_seconds: float
    s3_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.s1_seconds + self.s2_seconds + self.s3_seconds

    @property
    def shares(self) -> tuple[float, float, float]:
        t = self.total_seconds
        if t <= 0:
            return (0.0, 0.0, 0.0)
        return (self.s1_seconds / t, self.s2_seconds / t, self.s3_seconds / t)

    def __str__(self) -> str:
        s1, s2, s3 = self.shares
        return (
            f"{self.label}: S1 {s1:6.2%}  S2 {s2:6.2%}  S3 {s3:6.2%}"
            f"  (total {self.total_seconds:.2f} s)"
        )


def mixed_step_costs(
    cm: CostModel,
    lengths: np.ndarray,
    k: int,
    ws: int,
    s1_flags: OptFlags,
    s2_flags: OptFlags,
    s3_flags: OptFlags,
) -> StepCosts:
    """Per-step costs of a half-sweep whose steps use different variants."""
    return StepCosts(
        s1=cm.half_sweep(lengths, k, ws, s1_flags).s1,
        s2=cm.half_sweep(lengths, k, ws, s2_flags).s2,
        s3=cm.half_sweep(lengths, k, ws, s3_flags).s3,
    )


#: The Fig. 8 tuning pipeline: label → (s1_flags, s2_flags, s3_flags).
#: S3 stays on plain elimination until the final Cholesky switch the text
#: describes (15 s → 12 s on Netflix/K20c).
_FLAT = OptFlags(batched=False, cholesky=False)
_PLAIN = OptFlags(cholesky=False)
_S1OPT = OptFlags(registers=True, local_mem=True, cholesky=False)
_S2OPT = OptFlags(local_mem=True, cholesky=False)

FIG8_STAGES: tuple[tuple[str, tuple[OptFlags, OptFlags, OptFlags]], ...] = (
    ("baseline", (_FLAT, _FLAT, _FLAT)),
    ("thread batching", (_PLAIN, _PLAIN, _PLAIN)),
    ("optimizing S1", (_S1OPT, _PLAIN, _PLAIN)),
    ("optimizing S2", (_S1OPT, _S2OPT, _PLAIN)),
    (
        "optimizing S3 (Cholesky)",
        (_S1OPT, _S2OPT, OptFlags(local_mem=True, cholesky=True)),
    ),
)


def profile_steps(
    cm: CostModel,
    row_lengths: np.ndarray,
    col_lengths: np.ndarray,
    k: int,
    ws: int,
    stage_flags: tuple[OptFlags, OptFlags, OptFlags],
    label: str,
    iterations: int = 5,
) -> StepProfile:
    """Simulated per-step seconds over a full training run.

    The flat baseline is a single fused kernel; when all three stage flags
    are flat, the fused cost is split by work share (as the paper's
    profiler attribution does).
    """
    s1f, s2f, s3f = stage_flags
    total = None
    for lengths in (row_lengths, col_lengths):
        if not s1f.batched and not s2f.batched and not s3f.batched:
            costs = cm.flat_half_sweep(lengths, k, s1f)
        else:
            costs = mixed_step_costs(cm, lengths, k, ws, s1f, s2f, s3f)
        total = costs if total is None else total + costs
    return StepProfile(
        label=label,
        s1_seconds=total.s1.seconds * iterations,
        s2_seconds=total.s2.seconds * iterations,
        s3_seconds=total.s3.seconds * iterations,
    )
