"""Vectorized NumPy fast paths for the ALS update.

Every one of the 8 code variants computes the same half-sweep result
(they differ only in hardware mapping), so a single vectorized
implementation serves them all on large data.  Its equivalence to the
work-item kernels is asserted by the test suite on small instances
(tests/kernels/), which is what licenses the solvers to use it.

``sweep_occupied`` is the shard-sized kernel: assembly (S1/S2) plus the
batched solve (S3) over the *occupied* rows of one CSR matrix.  The
serial sweeps here wrap it for a whole matrix; the parallel executor
(:mod:`repro.parallel`) runs it once per nnz-balanced row shard on a
thread pool — BLAS and LAPACK release the GIL inside the batched GEMMs
and factorizations, so shards genuinely overlap.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.normal_equations import (
    batched_normal_equations,
    complement_predictions,
)
from repro.linalg.solvers import resolve_solver, solver_fn
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix

__all__ = ["fast_half_sweep", "fast_iteration", "sweep_occupied"]


def _resolve_auto(solver_name: str, k: int, batch: int) -> str:
    if solver_name != "auto":
        return solver_name
    from repro.autotune.solver import select_solver

    return select_solver(k, batch)


def sweep_occupied(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    weighted: bool = False,
    solver: str | None = None,
    cholesky: bool = True,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
    implicit_alpha: float | None = None,
    base_gram: np.ndarray | None = None,
    col_block: tuple[int, int] | None = None,
    X_current: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble and solve the occupied rows of ``R``; empty rows cost nothing.

    Returns ``(rows, X_rows)``: the occupied row indices and their solved
    factors.  Assembly is restricted to the (cached) occupied submatrix
    *before* S1, so an all-empty tail — common in the CSC sweep of a
    cold-start corpus — never allocates normal equations at all.

    ``weighted=True`` applies ALS-WR's per-row ridge ``λ·|Ω_u|·I``
    instead of the uniform ``λ I``.

    ``implicit_alpha`` switches to the implicit-feedback (Hu–Koren)
    update: the assembly computes the confidence-weighted correction
    ``Σ α·r · y yᵀ`` and the RHS ``Σ (1 + α·r) · y`` through the same
    binned/tiled kernels (weights derive from each shard's own values,
    so executor shards reproduce the serial result bitwise), and
    ``base_gram`` — the shared dense ``YᵀY`` the caller computes once
    per half-sweep — is broadcast onto every row's system before S3.

    ``col_block=(start, stop)`` restricts the update to a *subspace* of
    ``d = stop - start`` factor coordinates (iALS++ block coordinate
    descent): assembly runs against ``Y[:, start:stop]`` only — d×d Gram
    blocks, d-length RHS — and the contribution of the frozen complement
    coordinates is folded into the right-hand side via per-nnz
    complement predictions from ``X_current`` (required; shape
    ``(R.nrows, k)``).  The returned ``X_rows`` then has ``d`` columns.
    For the implicit update the complement additionally enters through
    the dense cross-Gram term ``X̄·Ḡ[comp, block]``, with ``base_gram``
    supplying the *full* ``k×k`` Gramian of ``Y``.  A full-width block
    skips every complement term and is bitwise-identical to the
    unblocked sweep.
    """
    if lam <= 0:
        raise ValueError("lam must be positive (λI keeps smat SPD)")
    if implicit_alpha is not None and weighted:
        raise ValueError("implicit_alpha and weighted (ALS-WR) are exclusive")
    k = Y.shape[1]
    if col_block is not None:
        start, stop = int(col_block[0]), int(col_block[1])
        if not (0 <= start < stop <= k):
            raise ValueError(f"col_block [{start}, {stop}) out of range for k={k}")
        blocked = stop - start < k
        if blocked and X_current is None:
            raise ValueError("a strict col_block requires X_current")
    else:
        start, stop = 0, k
        blocked = False
    d = stop - start
    if blocked and X_current.shape != (R.nrows, k):
        raise ValueError(f"X_current must have shape {(R.nrows, k)}")
    rows, sub = R.occupied_submatrix()
    if rows.size == 0:
        return rows, np.zeros((0, d), dtype=np.float64)
    # At full width Y[:, 0:k] is a plain view and every complement term
    # below is skipped, so the blocked path degenerates to the historical
    # sweep operation-for-operation (bitwise d == k reduction).
    Yb = Y[:, start:stop] if blocked else Y
    xc = X_current[rows] if blocked else None
    if implicit_alpha is not None:
        w = implicit_alpha * sub.value.astype(np.float64)
        rv = w + 1.0
        if blocked:
            pbar = complement_predictions(
                sub, xc, Y, start, stop, tile_nnz=tile_nnz
            )
            rv = rv - w * pbar
        A, b = batched_normal_equations(
            sub,
            Yb,
            lam=lam,
            mode=assembly,
            tile_nnz=tile_nnz,
            compute_dtype=compute_dtype,
            nnz_weight=w,
            rhs_nnz_value=rv,
        )
        if base_gram is not None:
            if base_gram.shape != (k, k):
                raise ValueError(f"base_gram must have shape {(k, k)}")
            A += base_gram[start:stop, start:stop]
            if blocked:
                # The (unweighted) part of the implicit loss over
                # unobserved entries couples the block to the frozen
                # complement coordinates through the dense Gramian:
                # b_B -= X̄ · Ḡ[comp, B].
                if start > 0:
                    b -= xc[:, :start] @ base_gram[:start, start:stop]
                if stop < k:
                    b -= xc[:, stop:] @ base_gram[stop:, start:stop]
        elif blocked:
            raise ValueError("a strict col_block implicit update requires base_gram")
    else:
        rv = None
        if blocked:
            pbar = complement_predictions(
                sub, xc, Y, start, stop, tile_nnz=tile_nnz
            )
            rv = sub.value.astype(np.float64) - pbar
        A, b = batched_normal_equations(
            sub,
            Yb,
            lam=0.0 if weighted else lam,
            mode=assembly,
            tile_nnz=tile_nnz,
            compute_dtype=compute_dtype,
            rhs_nnz_value=rv,
        )
        if weighted:
            # ALS-WR's ridge scales with the *full-row* degree, which a
            # block update leaves unchanged — the same λ·|Ω_u| lands on
            # each d×d diagonal.
            counts = sub.row_lengths().astype(np.float64)
            idx = np.arange(d)
            A[:, idx, idx] += (lam * counts)[:, None]
    if is_enabled():
        obs_metrics.inc("als.sweep.rows", rows.size)
        obs_metrics.inc("sparse.nnz_touched", R.nnz)
        if blocked:
            obs_metrics.inc("subspace.block_updates")
            obs_metrics.set_gauge("subspace.block_size", d)
    solver_name = _resolve_auto(resolve_solver(solver, cholesky), d, rows.size)
    s3_name = "als.implicit.s3" if implicit_alpha is not None else "als.s3.solve"
    with span(s3_name, stage="S3", solver=solver_name, k=d, batch=rows.size):
        obs_metrics.inc(f"solver.{solver_name}.calls")
        X_rows = solver_fn(solver_name)(A, b)
    return rows, X_rows


def fast_half_sweep(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    X_prev: np.ndarray | None = None,
    cholesky: bool = True,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> np.ndarray:
    """Update all rows: ``x_u = (Y_ΩᵀY_Ω + λI)⁻¹ Y_Ωᵀ r_u`` (Eq. 4).

    Rows with no observed ratings are skipped, exactly as Algorithm 2's
    ``omegaSize > 0`` guard does: they keep their previous value
    (``X_prev``), or zero when no previous factors are given.

    ``solver`` selects the S3 variant (``cholesky``/``gaussian``/
    ``lapack``/``auto``); the legacy ``cholesky`` boolean is honored when
    ``solver`` is unset.  ``assembly``/``tile_nnz``/``compute_dtype``
    select the S1/S2 code variant (see :func:`batched_normal_equations`);
    ``None`` defers to the configured/environment defaults.

    A :class:`~repro.sparse.shards.ShardedCSR` ``R`` runs the blocked
    out-of-core sweep (one resident row-range shard at a time) through a
    serial :class:`~repro.parallel.executor.SweepExecutor`; the result
    is bitwise-identical to the in-RAM sweep.
    """
    from repro.sparse.shards import ShardedCSR

    if isinstance(R, ShardedCSR):
        # Imported lazily: parallel.executor imports this module.
        from repro.parallel.executor import SweepExecutor

        with SweepExecutor(1) as ex:
            return ex.half_sweep(
                R, Y, lam, X_prev=X_prev, solver=solver, cholesky=cholesky,
                assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
            )
    m = R.nrows
    k = Y.shape[1]
    X = np.zeros((m, k), dtype=np.float64)
    if X_prev is not None:
        if X_prev.shape != (m, k):
            raise ValueError(f"X_prev must have shape {(m, k)}")
        X[:] = X_prev
    rows, X_rows = sweep_occupied(
        R, Y, lam, solver=solver, cholesky=cholesky,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    X[rows] = X_rows
    return X


def fast_iteration(
    R_rows: CSRMatrix,
    R_cols: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    lam: float,
    cholesky: bool = True,
    solver: str | None = None,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One ALS iteration (Algorithm 1 lines 4–9).

    ``R_cols`` is the transpose of ``R_rows`` in CSR form — i.e. the CSC
    view the paper uses for the Y update (§III-A).
    """
    X_new = fast_half_sweep(
        R_rows, Y, lam, X_prev=X, cholesky=cholesky, solver=solver,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    Y_new = fast_half_sweep(
        R_cols, X_new, lam, X_prev=Y, cholesky=cholesky, solver=solver,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    return X_new, Y_new
