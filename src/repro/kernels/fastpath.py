"""Vectorized NumPy fast paths for the ALS update.

Every one of the 8 code variants computes the same half-sweep result
(they differ only in hardware mapping), so a single vectorized
implementation serves them all on large data.  Its equivalence to the
work-item kernels is asserted by the test suite on small instances
(tests/kernels/), which is what licenses the solvers to use it.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.cholesky import batched_cholesky_solve
from repro.linalg.gaussian import batched_gaussian_solve
from repro.linalg.normal_equations import batched_normal_equations
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix

__all__ = ["fast_half_sweep", "fast_iteration"]


def fast_half_sweep(
    R: CSRMatrix,
    Y: np.ndarray,
    lam: float,
    X_prev: np.ndarray | None = None,
    cholesky: bool = True,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> np.ndarray:
    """Update all rows: ``x_u = (Y_ΩᵀY_Ω + λI)⁻¹ Y_Ωᵀ r_u`` (Eq. 4).

    Rows with no observed ratings are skipped, exactly as Algorithm 2's
    ``omegaSize > 0`` guard does: they keep their previous value
    (``X_prev``), or zero when no previous factors are given.

    ``assembly``/``tile_nnz``/``compute_dtype`` select the S1/S2 code
    variant (see :func:`batched_normal_equations`); ``None`` defers to
    the configured/environment defaults.
    """
    if lam <= 0:
        raise ValueError("lam must be positive (λI keeps smat SPD)")
    m = R.nrows
    k = Y.shape[1]
    # One walk of the row structure serves the whole sweep: row_lengths
    # is cached on the matrix, so the assembly's degree bins, this
    # occupancy mask and the S3 guard all share a single occupancy scan.
    occupied = R.row_lengths() > 0
    A, b = batched_normal_equations(
        R, Y, lam, mode=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype
    )
    X = np.zeros((m, k), dtype=np.float64)
    if X_prev is not None:
        if X_prev.shape != (m, k):
            raise ValueError(f"X_prev must have shape {(m, k)}")
        X[:] = X_prev
    if is_enabled():
        obs_metrics.inc("als.sweep.rows", int(occupied.sum()))
        obs_metrics.inc("sparse.nnz_touched", R.nnz)
    if occupied.any():
        solver_name = "cholesky" if cholesky else "gaussian"
        solver = batched_cholesky_solve if cholesky else batched_gaussian_solve
        with span("als.s3.solve", stage="S3", solver=solver_name, k=k):
            obs_metrics.inc(f"solver.{solver_name}.calls")
            X[occupied] = solver(A[occupied], b[occupied])
    return X


def fast_iteration(
    R_rows: CSRMatrix,
    R_cols: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    lam: float,
    cholesky: bool = True,
    assembly: str | None = None,
    tile_nnz: int | None = None,
    compute_dtype: object | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One ALS iteration (Algorithm 1 lines 4–9).

    ``R_cols`` is the transpose of ``R_rows`` in CSR form — i.e. the CSC
    view the paper uses for the Y update (§III-A).
    """
    X_new = fast_half_sweep(
        R_rows, Y, lam, X_prev=X, cholesky=cholesky,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    Y_new = fast_half_sweep(
        R_cols, X_new, lam, X_prev=Y, cholesky=cholesky,
        assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
    )
    return X_new, Y_new
