"""ALS kernels: the paper's code variants.

The contribution of the paper is *how* the ALS update maps onto the
hardware: a flat one-thread-per-row baseline (§III-A) versus a
thread-batched one-group-per-row mapping (§III-B), refined by three
architecture-specific optimizations (§III-C) whose combinations form the
8 code variants of §III-D.

Each variant exists twice here:

* a **work-item kernel** (generator function, run by
  :mod:`repro.clsim.interpreter`) that is the faithful transliteration of
  the OpenCL code, used for correctness validation and memory-access
  accounting, and
* a **vectorized fast path** (:mod:`repro.kernels.fastpath`) computing the
  identical result with NumPy, used by the solvers on large data.
"""

from repro.kernels.variants import (
    Variant,
    all_variants,
    variant_from_flags,
    recommended_variant,
    FIG6_BARS,
)
from repro.kernels.fastpath import fast_half_sweep, fast_iteration
from repro.kernels.dispatch import interpreted_half_sweep
from repro.kernels.steps import StepProfile, profile_steps
from repro.kernels.opencl_source import generate_program

__all__ = [
    "Variant",
    "all_variants",
    "variant_from_flags",
    "recommended_variant",
    "FIG6_BARS",
    "fast_half_sweep",
    "fast_iteration",
    "interpreted_half_sweep",
    "StepProfile",
    "profile_steps",
    "generate_program",
]
