"""The flat SAC15-style baseline kernel (Algorithm 2).

One work-item updates one whole row: it assembles the k×k ``smat`` and the
k-vector ``svec`` in private memory (the structure whose spilling §III-C1
diagnoses), then solves with Cholesky.  S2 reads the rating values through
the ``colMajored_sparse_id`` indirection (Algorithm 2 line 10): the SAC15
code keeps the value array in column-major (CSC) order and dereferences it
per non-zero while walking the CSR structure — one more scattered access
stream the thread-batched design eliminates.
"""

from __future__ import annotations

from repro.clsim.kernel import Kernel
from repro.kernels.private_solver import solve_private

__all__ = ["flat_update_kernel"]


def _flat_body(
    item,
    local,
    *,
    value_colmajor,
    colmajor_id,
    col_idx,
    row_ptr,
    Y,
    X,
    k,
    lam,
    cholesky=True,
):
    yield from ()  # no barriers: purely private computation
    u = item.global_id
    m = len(row_ptr.array) - 1
    if u >= m:
        return
    lo = int(row_ptr.load(u))
    hi = int(row_ptr.load(u + 1))
    omega = hi - lo
    if omega == 0:  # Algorithm 2 line 5: skip empty rows
        return

    # --- S1: smat = Y_Ωᵀ Y_Ω + λI, private k×k accumulator ---
    smat = [[0.0] * k for _ in range(k)]
    for i in range(k):
        for j in range(i, k):
            acc = 0.0
            for z in range(omega):
                d = int(col_idx.load(lo + z)) * k
                acc += float(Y.load(d + i)) * float(Y.load(d + j))
            smat[i][j] = acc
            smat[j][i] = acc
    for i in range(k):
        smat[i][i] += lam

    # --- S2: svec = Y_Ωᵀ r_u via the colMajored indirection ---
    svec = [0.0] * k
    for c in range(k):
        for z in range(omega):
            idx = lo + z
            idx2 = int(colmajor_id.load(idx))
            d = int(col_idx.load(idx)) * k
            svec[c] += float(value_colmajor.load(idx2)) * float(Y.load(d + c))

    # --- S3: solve smat · x = svec ---
    x = solve_private(smat, svec, k, cholesky=cholesky)
    for c in range(k):
        X.store((u, c), x[c])


def flat_update_kernel() -> Kernel:
    """Build the flat one-thread-per-row update kernel."""
    return Kernel(name="als_update_flat", body=_flat_body)
