"""In-kernel k×k solvers over private memory.

These run inside a single work-item (the paper's S3, Algorithm 2 lines
16–17), so they work on plain Python lists — the simulator's "private
memory" — rather than NumPy arrays.  ``cholesky`` is the optimized solver
the paper adopts; ``gaussian`` is the pre-optimization comparator §V-C
measures against (15 s → 12 s on Netflix/K20c).
"""

from __future__ import annotations

import math

__all__ = ["solve_private"]


def _cholesky_solve_private(a: list[list[float]], b: list[float], k: int) -> list[float]:
    # factor: a = L Lᵀ, L stored in-place in the lower triangle
    for j in range(k):
        d = a[j][j] - sum(a[j][p] * a[j][p] for p in range(j))
        if d <= 0.0:
            raise ValueError(f"non-SPD smat at pivot {j}")
        a[j][j] = math.sqrt(d)
        for i in range(j + 1, k):
            a[i][j] = (a[i][j] - sum(a[i][p] * a[j][p] for p in range(j))) / a[j][j]
    # forward: L z = b
    z = [0.0] * k
    for i in range(k):
        z[i] = (b[i] - sum(a[i][p] * z[p] for p in range(i))) / a[i][i]
    # backward: Lᵀ x = z
    x = [0.0] * k
    for i in range(k - 1, -1, -1):
        x[i] = (z[i] - sum(a[p][i] * x[p] for p in range(i + 1, k))) / a[i][i]
    return x


def _gaussian_solve_private(a: list[list[float]], b: list[float], k: int) -> list[float]:
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(a[r][col]))
        if a[pivot][col] == 0.0:
            raise ValueError("singular smat")
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
            b[col], b[pivot] = b[pivot], b[col]
        for r in range(col + 1, k):
            f = a[r][col] / a[col][col]
            for c in range(col, k):
                a[r][c] -= f * a[col][c]
            b[r] -= f * b[col]
    x = [0.0] * k
    for i in range(k - 1, -1, -1):
        x[i] = (b[i] - sum(a[i][p] * x[p] for p in range(i + 1, k))) / a[i][i]
    return x


def solve_private(
    a: list[list[float]], b: list[float], k: int, cholesky: bool = True
) -> list[float]:
    """Solve the k×k system ``a x = b`` in private memory.

    Mutates ``a`` and ``b`` (they are scratch, exactly as on the device).
    """
    if cholesky:
        return _cholesky_solve_private(a, b, k)
    return _gaussian_solve_private(a, b, k)
