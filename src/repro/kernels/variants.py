"""The 8-variant optimization space (§III-D).

"Based on the thread batching version, we will yield 8 versions of code
variants by individually applying different optimization techniques or
combining them" — i.e. every subset of {registers, local memory, vector}.
The flat baseline is a ninth configuration kept for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.clsim.costmodel import OptFlags
from repro.clsim.device import DeviceKind, DeviceSpec

__all__ = [
    "Variant",
    "all_variants",
    "variant_from_flags",
    "recommended_variant",
    "FIG6_BARS",
]


@dataclass(frozen=True)
class Variant:
    """A named point in the optimization space."""

    flags: OptFlags

    @property
    def name(self) -> str:
        return self.flags.label()

    @property
    def is_baseline(self) -> bool:
        return not self.flags.batched

    def __str__(self) -> str:
        return self.name


#: The flat SAC15-style mapping (one thread per row/column).
FLAT_BASELINE = Variant(OptFlags(batched=False))

#: Thread batching with no architecture-specific optimization.
THREAD_BATCHING = Variant(OptFlags())


def all_variants(include_baseline: bool = False) -> tuple[Variant, ...]:
    """All 8 thread-batched variants (optionally plus the flat baseline)."""
    out = [
        Variant(OptFlags(registers=reg, local_mem=lm, vector=vec))
        for reg, lm, vec in product((False, True), repeat=3)
    ]
    if include_baseline:
        out.insert(0, FLAT_BASELINE)
    return tuple(out)


def variant_from_flags(
    registers: bool = False, local_mem: bool = False, vector: bool = False
) -> Variant:
    return Variant(OptFlags(registers=registers, local_mem=local_mem, vector=vector))


def recommended_variant(device: DeviceSpec) -> Variant:
    """The per-architecture variant the paper settles on (§V, Fig. 10).

    "We use thread batching + local memory + registers on the GPU while we
    only use thread batching + local memory on the CPU/MIC" — plus explicit
    vectors on CPU/MIC, which §V-B reports as a slight further improvement.
    """
    if device.kind is DeviceKind.GPU:
        return variant_from_flags(registers=True, local_mem=True)
    return variant_from_flags(local_mem=True, vector=True)


#: The four cumulative configurations plotted in Fig. 6, in bar order:
#: thread batching, +local memory, +local memory+register, +vector.
FIG6_BARS: tuple[tuple[str, Variant], ...] = (
    ("thread batching", THREAD_BATCHING),
    ("+local memory", variant_from_flags(local_mem=True)),
    ("+local memory + register", variant_from_flags(local_mem=True, registers=True)),
    (
        "+vector",
        variant_from_flags(local_mem=True, registers=True, vector=True),
    ),
)
