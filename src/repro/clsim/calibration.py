"""Calibration constants for the performance model.

The cost model (:mod:`repro.clsim.costmodel`) is *mechanistic*: every term
corresponds to an architectural effect the paper discusses (divergence,
coalescing, spilling, staging, lane utilization).  The constants below set
the magnitudes of those effects per architecture class.  They were fitted
once, in one place, against the paper's published anchor ratios:

* Fig. 1 — SAC15 CUDA baseline ≈ 8.4× slower than SAC15 OpenMP baseline;
* Fig. 7 — ours 5.5× over SAC15/CPU, 21.2× over SAC15/K20c, 2.2–6.8× over
  cuMF;
* Fig. 6 — registers+local up to 2.6× on GPU; local up to 1.6× (CPU) and
  1.4× (MIC); registers+local *degrades* on CPU/MIC; vectors ≈ neutral on
  GPU, slightly positive on CPU/MIC;
* Fig. 9 — GPU ≈ 1.5× and MIC ≈ 4.1× slower than the 16-core CPU;
* Fig. 10 — block-size optimum at 16/32 on GPU, "smaller is better" on
  CPU, dataset-dependent on MIC.

Nothing outside this module hard-codes a paper number; changing a constant
changes every experiment consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.clsim.device import DeviceKind

__all__ = ["KindConstants", "Calibration", "default_calibration"]


@dataclass(frozen=True)
class KindConstants:
    """Architecture-class constants consumed by the cost model."""

    # Fraction of the device's peak strip-issue rate that an irregular
    # sparse kernel actually sustains (driver, latency, dependency stalls).
    compute_eff: float
    # Cycles per strip-step for the multiply–accumulate inner loops.
    cpi: float
    # Effective fractions of peak DRAM bandwidth per access class.
    eff_stream: float
    eff_column_gather: float
    eff_scattered: float
    # Fraction of *repeated* passes over the same data served by caches.
    cache_absorb: float
    # S1 compute multiplier when the k×k private accumulator array spills
    # (i.e. the registers optimization is OFF) — §III-C1.
    spill_mult: float
    # Relative issue cost of strips whose lanes are all predicated off.
    guard_frac: float
    # Per-work-item bookkeeping cycles charged once per group (the OpenCL
    # runtime's work-item loop on CPU/MIC; ~0 on GPU).
    item_overhead_cycles: float
    # Fixed per-work-group scheduling cycles.
    group_overhead_cycles: float
    # Compute multiplier once inputs are staged contiguously (§III-C2
    # lets the compiler vectorize streaming loops on CPU/MIC).
    stage_compute_gain: float
    # Penalty multiplier when registers+local are combined on devices
    # whose "scratchpad" is emulated in cache (working set > L1) — §V-B.
    thrash_mult: float
    # Compute multiplier with explicit vectorization (§III-C3).
    vector_gain: float
    # Throughput multiplier for the S3 solve with the batched
    # lane-parallel Cholesky formulation the paper adopts ([21], §V-A).
    s3_eff: float
    # Throughput multiplier for the pre-optimization S3: a naive serial
    # elimination on one lane per group (§V-C's 15 s → 12 s comparison).
    s3_serial_eff: float
    # Cycles per scalar multiply–accumulate in the flat baseline kernels
    # (latency-bound pointer chasing; §III-B's scattered accesses).
    flat_cpi: float
    # Multiplier on *all* flat-baseline memory traffic for per-thread
    # private smat/svec spill round-trips.
    flat_spill_traffic: float


@dataclass(frozen=True)
class Calibration:
    """Complete constant set: one :class:`KindConstants` per device kind."""

    cpu: KindConstants
    gpu: KindConstants
    mic: KindConstants

    def for_kind(self, kind: DeviceKind) -> KindConstants:
        return {
            DeviceKind.CPU: self.cpu,
            DeviceKind.GPU: self.gpu,
            DeviceKind.MIC: self.mic,
        }[kind]

    def with_kind(self, kind: DeviceKind, **changes) -> "Calibration":
        """Return a copy with one kind's constants partially replaced."""
        current = self.for_kind(kind)
        updated = replace(current, **changes)
        return replace(self, **{kind.value: updated})


_CPU = KindConstants(
    compute_eff=0.050,
    cpi=1.0,
    eff_stream=0.80,
    eff_column_gather=0.45,
    eff_scattered=0.16,
    cache_absorb=0.85,
    spill_mult=1.05,  # 55-float accumulators sit comfortably in L1
    guard_frac=0.12,
    item_overhead_cycles=20.0,
    group_overhead_cycles=300.0,
    stage_compute_gain=0.70,
    thrash_mult=1.45,
    vector_gain=0.93,
    s3_eff=0.8,
    s3_serial_eff=0.7,
    flat_cpi=68.0,
    flat_spill_traffic=1.0,
)

_GPU = KindConstants(
    compute_eff=0.016,
    cpi=1.0,
    eff_stream=0.75,
    eff_column_gather=0.30,
    eff_scattered=0.08,
    cache_absorb=0.40,
    spill_mult=2.2,  # k×k private array spills past the register budget
    guard_frac=0.45,
    item_overhead_cycles=0.0,
    group_overhead_cycles=28.0,
    stage_compute_gain=1.0,  # scratchpad staging saves memory, not issue slots
    thrash_mult=1.0,  # real scratchpad: no cache aliasing with registers
    vector_gain=1.0,  # SIMT already vectorizes; §V-B: "very little change"
    s3_eff=4.0,
    s3_serial_eff=0.5,
    flat_cpi=100.0,
    flat_spill_traffic=4.0,
)

_MIC = KindConstants(
    compute_eff=0.0145,
    cpi=1.0,
    eff_stream=0.45,
    eff_column_gather=0.22,
    eff_scattered=0.06,
    cache_absorb=0.60,
    spill_mult=1.10,
    guard_frac=0.40,
    item_overhead_cycles=26.0,
    group_overhead_cycles=120.0,
    stage_compute_gain=0.68,
    thrash_mult=1.40,
    vector_gain=0.90,
    s3_eff=0.6,
    s3_serial_eff=0.5,
    flat_cpi=120.0,
    flat_spill_traffic=1.5,
)

def default_calibration() -> Calibration:
    """The constant set fitted to the paper's anchors (module docstring)."""
    return Calibration(cpu=_CPU, gpu=_GPU, mic=_MIC)
