"""Mechanistic performance model for simulated kernel launches.

One ALS half-sweep (update all rows of X, or all columns of Y) runs as
three kernels (paper §V-C):

* **S1** — assemble ``smat = Y_ΩᵀY_Ω + λI`` per row,
* **S2** — assemble ``svec = Yᵀ r_u`` per row,
* **S3** — solve the k×k system per row.

For each step the model derives a compute time and a memory time and takes
their maximum (kernels overlap computation with memory), then adds the
launch overhead.  All quantities are computed from the nnz-per-row degree
sequence, the latent factor k, the work-group size, the device spec and
the optimization flags — the same inputs that decide performance on real
hardware.

The flat (one-thread-per-row) mapping of the SAC15 baseline is modelled by
:meth:`CostModel.flat_half_sweep`; the paper's thread-batched mapping by
:meth:`CostModel.batched_half_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.calibration import Calibration, KindConstants, default_calibration
from repro.clsim.device import DeviceKind, DeviceSpec
from repro.sparse.partition import partition_rows_balanced

__all__ = ["OptFlags", "LaunchCost", "StepCosts", "CostModel"]

_FLOAT = 4  # sizeof(float) on the device
_INT = 4  # sizeof(int) index


@dataclass(frozen=True)
class OptFlags:
    """The optimization space of the paper.

    ``batched`` distinguishes the thread-batched mapping (§III-B) from the
    flat baseline; the three booleans ``registers`` / ``local_mem`` /
    ``vector`` are the architecture-specific optimizations of §III-C whose
    combinations form the 8 code variants (§III-D).  ``cholesky`` selects
    the S3 solver (§V-C compares Cholesky against plain elimination).
    """

    batched: bool = True
    registers: bool = False
    local_mem: bool = False
    vector: bool = False
    cholesky: bool = True

    def label(self) -> str:
        if not self.batched:
            return "flat-baseline"
        parts = ["batching"]
        if self.local_mem:
            parts.append("local")
        if self.registers:
            parts.append("reg")
        if self.vector:
            parts.append("vec")
        return "+".join(parts)


@dataclass(frozen=True)
class LaunchCost:
    """Cost of one kernel launch."""

    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def seconds(self) -> float:
        return max(self.compute_s, self.memory_s) + self.overhead_s

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.memory_s else "memory"

    def __add__(self, other: "LaunchCost") -> "LaunchCost":
        # Aggregating launches: maxima don't distribute over sums, so the
        # sum of LaunchCosts keeps per-component totals; ``seconds`` of a
        # sum is a lower bound used only for reporting aggregates.
        return LaunchCost(
            self.compute_s + other.compute_s,
            self.memory_s + other.memory_s,
            self.overhead_s + other.overhead_s,
        )


@dataclass(frozen=True)
class StepCosts:
    """Per-step costs of one half-sweep (S1, S2, S3 kernels)."""

    s1: LaunchCost
    s2: LaunchCost
    s3: LaunchCost

    @property
    def seconds(self) -> float:
        return self.s1.seconds + self.s2.seconds + self.s3.seconds

    def shares(self) -> tuple[float, float, float]:
        """Fractions of total time per step — the Fig. 8 pie slices."""
        total = self.seconds
        if total <= 0.0:
            return (0.0, 0.0, 0.0)
        return (
            self.s1.seconds / total,
            self.s2.seconds / total,
            self.s3.seconds / total,
        )

    def __add__(self, other: "StepCosts") -> "StepCosts":
        return StepCosts(self.s1 + other.s1, self.s2 + other.s2, self.s3 + other.s3)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class CostModel:
    """Derives launch times for ALS kernels on one simulated device."""

    def __init__(self, device: DeviceSpec, calibration: Calibration | None = None):
        self.device = device
        self.calibration = calibration or default_calibration()
        self.constants: KindConstants = self.calibration.for_kind(device.kind)

    # ------------------------------------------------------------------
    # conversion helpers
    # ------------------------------------------------------------------
    def _compute_seconds(self, strip_steps: float) -> float:
        c = self.constants
        throughput = self.device.peak_strips_per_second * c.compute_eff
        return strip_steps * c.cpi / throughput

    def _memory_seconds(self, bytes_moved: float) -> float:
        return bytes_moved / (self.device.global_bandwidth_gbs * 1e9)

    def _overhead_seconds(self, launches: int = 1) -> float:
        return launches * self.device.launch_overhead_us * 1e-6

    def _s3_work(self, k: int, cholesky: bool) -> float:
        # Cholesky: k³/3 MACs to factor + 2·k²/2 per triangular solve.
        # Gaussian elimination on the same SPD system: ~2k³/3 + k².
        if cholesky:
            return k**3 / 3.0 + k**2
        return 2.0 * k**3 / 3.0 + k**2

    # ------------------------------------------------------------------
    # thread-batched mapping (the paper's contribution, §III-B)
    # ------------------------------------------------------------------
    def batched_half_sweep(
        self,
        lengths: np.ndarray,
        k: int,
        ws: int,
        flags: OptFlags,
    ) -> StepCosts:
        """Cost of updating every row, one work-group per row."""
        if k <= 0 or ws <= 0:
            raise ValueError("k and ws must be positive")
        lengths = np.asarray(lengths, dtype=np.float64)
        c = self.constants
        d = self.device

        Z = float(lengths.sum())  # total nnz
        n_rows = int(lengths.size)
        occupied = float((lengths > 0).sum())  # rows that actually solve

        useful = min(ws, k)
        passes = _ceil_div(k, useful)
        strips_total = d.warps_per_group(ws)
        strips_active = _ceil_div(min(useful, ws), d.hw_width)
        strip_factor = strips_active + c.guard_frac * (strips_total - strips_active)

        # Parallelism deficit: one group per row; if there are fewer rows
        # than the device needs in flight, throughput scales down.
        slack = min(1.0, n_rows / d.concurrent_groups_hint)

        # ---- compute (strip-steps) ----
        spill = 1.0 if flags.registers else c.spill_mult
        gain = 1.0
        if flags.local_mem:
            gain *= c.stage_compute_gain
        if flags.vector:
            gain *= c.vector_gain
        if flags.registers and flags.local_mem and not d.has_scratchpad:
            # §V-B: combining both on cache-emulated scratchpads thrashes L1.
            gain *= c.thrash_mult

        per_group_overhead = (
            c.group_overhead_cycles + ws * c.item_overhead_cycles
        ) * n_rows

        s1_steps = passes * k * Z * strip_factor * spill * gain + per_group_overhead
        s2_steps = passes * Z * strip_factor * gain + per_group_overhead
        # The Cholesky S3 uses the batched lane-parallel formulation [21];
        # the pre-optimization solver runs serially on one lane per group.
        s3_eff = c.s3_eff if flags.cholesky else c.s3_serial_eff
        s3_steps = self._s3_work(k, flags.cholesky) * occupied / s3_eff
        s3_steps += per_group_overhead

        # ---- memory (bytes moved) ----
        y_useful = Z * k * _FLOAT
        if flags.local_mem:
            # Stage the needed Y columns once per row (Fig. 5); reuse is
            # on-chip.  Each step's kernel stages independently.
            s1_y = y_useful / c.eff_column_gather
            s2_y = y_useful / c.eff_column_gather
            s2_r = Z * _FLOAT / c.eff_stream  # r_u staged once, contiguous CSR
        else:
            # S1 reads the column strip and the broadcast column per z
            # (Fig. 3); repeated passes partially served by caches.
            reread_s1 = 2.0
            s1_y = (
                y_useful
                * (1.0 + (reread_s1 - 1.0) * (1.0 - c.cache_absorb))
                / c.eff_column_gather
            )
            # Unstaged S2 is the §III-C2 pathology: ``Y[col_idx[z]*k + c]``
            # strides by k between consecutive z, so every access is a
            # scattered scalar paying a full transaction; r is re-walked
            # once per latent dimension c (Algorithm 2 lines 8–15), later
            # passes cache-absorbed.
            extra = (k - 1.0) * (1.0 - c.cache_absorb)
            s2_y = y_useful * (1.0 + extra) / c.eff_scattered
            s2_r = Z * _FLOAT * (1.0 + extra) / c.eff_stream
        s1_idx = passes * Z * _INT / c.eff_stream  # col_idx walk
        s1_out = n_rows * k * k * _FLOAT / c.eff_stream  # smat store
        s2_out = n_rows * k * _FLOAT / c.eff_stream  # svec store
        s3_bytes = n_rows * (k * k + 2 * k) * _FLOAT / c.eff_stream

        s1 = LaunchCost(
            self._compute_seconds(s1_steps) / slack,
            self._memory_seconds(s1_y + s1_idx + s1_out),
            self._overhead_seconds(),
        )
        s2 = LaunchCost(
            self._compute_seconds(s2_steps) / slack,
            self._memory_seconds(s2_y + s2_r + s2_out),
            self._overhead_seconds(),
        )
        s3 = LaunchCost(
            self._compute_seconds(s3_steps) / slack,
            self._memory_seconds(s3_bytes),
            self._overhead_seconds(),
        )
        return StepCosts(s1, s2, s3)

    # ------------------------------------------------------------------
    # flat mapping (SAC15 baseline, §III-B's diagnosis)
    # ------------------------------------------------------------------
    def flat_half_sweep(
        self,
        lengths: np.ndarray,
        k: int,
        flags: OptFlags | None = None,
    ) -> StepCosts:
        """Cost of updating every row, one *thread* per row (Algorithm 2).

        On SIMT/SIMD devices consecutive rows share a warp/vector, so each
        window advances at the pace of its longest row; on the CPU the
        OpenMP runtime schedules rows across MIMD cores, so the relevant
        imbalance is per-core total load.
        """
        flags = flags or OptFlags(batched=False)
        lengths_i = np.asarray(lengths, dtype=np.int64)
        lengths = lengths_i.astype(np.float64)
        c = self.constants
        d = self.device

        Z = float(lengths.sum())
        n_rows = int(lengths.size)
        occupied = float((lengths > 0).sum())
        mac_per_nz = k * (k + 1) / 2.0 + k  # S1 pairs + S2 per non-zero
        s3_work = self._s3_work(k, flags.cholesky)

        if d.kind is DeviceKind.CPU:
            # MIMD: one scalar thread per row, scheduled dynamically over
            # the cores; wall time follows the most-loaded core.
            part = partition_rows_balanced(lengths_i, d.compute_units)
            serial_nz = float(part.loads.max()) * d.compute_units
            wall_scalar_ops = serial_nz * mac_per_nz + occupied * s3_work
            slack = 1.0  # any realistic m keeps 16 cores busy
        else:
            # SIMT/SIMD windows of consecutive rows: the window advances at
            # the pace of its longest row (§III-B's unbalanced thread use).
            window = d.hw_width
            pad = (-lengths.size) % window
            padded = np.pad(lengths, (0, pad))
            wall_nz = float(padded.reshape(-1, window).max(axis=1).sum())
            wall_scalar_ops = wall_nz * mac_per_nz + occupied * s3_work / window
            # Flat mapping needs one HW lane per row; small matrices cannot
            # fill the device (few columns on NTFX/YMR4 → idle warps).
            lanes_wanted = d.compute_units * d.threads_per_unit * d.hw_width
            slack = min(1.0, lengths.size / lanes_wanted)
        total_steps = wall_scalar_ops * c.flat_cpi * c.spill_mult / slack

        # Memory: with one thread per row every access is scattered
        # (§III-B — neighbouring threads touch addresses ≥ (k+1)·k apart):
        # each multiply–accumulate reads one Y operand and round-trips its
        # private (spilled) accumulator, and S2 re-reads R through the
        # colMajored indirection.  Counted per MAC because nothing is
        # cooperatively loaded; the device caches absorb what they can.
        mac_total = Z * mac_per_nz
        y_bytes = mac_total * _FLOAT
        acc_bytes = mac_total * 2.0 * _FLOAT * c.flat_spill_traffic
        r_bytes = Z * _FLOAT * k
        bytes_moved = (
            (y_bytes + acc_bytes + r_bytes)
            * (1.0 - c.cache_absorb)
            / c.eff_scattered
        )

        # The baseline is one fused kernel; attribute costs to S1/S2/S3 by
        # their step-work shares so Fig. 8(a) can still be drawn.
        w1 = k * (k + 1) / 2.0 * Z
        w2 = k * Z
        # The private triangular solves are dependency chains running at a
        # fraction of the accumulation loops' MAC throughput; weight S3's
        # share of the fused kernel accordingly (matches the baseline's
        # measured ~16% S3 share in Fig. 8a).
        w3 = s3_work * occupied * 12.0
        total_w = w1 + w2 + w3
        # Flat kernels issue one scalar op per lane per cycle at best; the
        # flat_cpi constant holds the measured cycles per scalar op.
        compute = total_steps / (d.compute_units * d.clock_ghz * 1e9)
        memory = self._memory_seconds(bytes_moved)
        overhead = self._overhead_seconds()

        def split(fraction: float, with_overhead: bool) -> LaunchCost:
            return LaunchCost(
                compute * fraction,
                memory * fraction,
                overhead if with_overhead else 0.0,
            )

        return StepCosts(
            split(w1 / total_w, True),
            split(w2 / total_w, False),
            split(w3 / total_w, False),
        )

    # ------------------------------------------------------------------
    # full-solve aggregation
    # ------------------------------------------------------------------
    def half_sweep(
        self,
        lengths: np.ndarray,
        k: int,
        ws: int,
        flags: OptFlags,
    ) -> StepCosts:
        """Dispatch on the mapping selected by ``flags.batched``."""
        if flags.batched:
            return self.batched_half_sweep(lengths, k, ws, flags)
        return self.flat_half_sweep(lengths, k, flags)

    def iteration(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int,
        ws: int,
        flags: OptFlags,
    ) -> StepCosts:
        """One ALS iteration: update X over rows, then Y over columns."""
        return self.half_sweep(row_lengths, k, ws, flags) + self.half_sweep(
            col_lengths, k, ws, flags
        )

    def training_time(
        self,
        row_lengths: np.ndarray,
        col_lengths: np.ndarray,
        k: int,
        ws: int,
        flags: OptFlags,
        iterations: int,
    ) -> float:
        """Total simulated seconds for ``iterations`` ALS iterations."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        # Each half-sweep's seconds = Σ_step max(compute, memory) + overhead;
        # launches repeat every iteration, so nothing amortizes.
        x_costs = self.half_sweep(row_lengths, k, ws, flags)
        y_costs = self.half_sweep(col_lengths, k, ws, flags)
        return iterations * (x_costs.seconds + y_costs.seconds)
