"""Timeline export of simulated command queues.

Serializes a :class:`~repro.clsim.runtime.CommandQueue`'s profiling
events as a Chrome trace (``chrome://tracing`` / Perfetto JSON), laying
the launches end-to-end on the simulated device timeline — the moral
equivalent of ``CL_QUEUE_PROFILING_ENABLE`` plus a trace viewer.

The event serialization itself lives in :mod:`repro.obs.export`, the
single producer of the trace format; that is what lets a simulated queue
and the measured host spans of :mod:`repro.obs.spans` share one merged
timeline (``repro-als profile ... --device ... --trace out.json``).
"""

from __future__ import annotations

import json
import os

from repro.clsim.runtime import CommandQueue
from repro.obs.export import queue_to_events

__all__ = ["queue_to_chrome_trace", "write_chrome_trace"]


def queue_to_chrome_trace(queue: CommandQueue) -> list[dict]:
    """Convert queue events to Chrome trace 'complete' (X) events.

    In-order queue semantics: each launch starts when the previous one
    finishes.  Timestamps are microseconds of *simulated* device time.
    """
    return queue_to_events(queue, pid=0, tid=0)


def write_chrome_trace(queue: CommandQueue, path: str | os.PathLike) -> None:
    """Write the queue timeline as a Chrome-trace JSON file."""
    payload = {
        "traceEvents": queue_to_chrome_trace(queue),
        "displayTimeUnit": "ms",
        "otherData": {"device": queue.device.name},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
