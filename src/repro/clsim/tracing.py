"""Timeline export of simulated command queues.

Serializes a :class:`~repro.clsim.runtime.CommandQueue`'s profiling
events as a Chrome trace (``chrome://tracing`` / Perfetto JSON), laying
the launches end-to-end on the simulated device timeline — the moral
equivalent of ``CL_QUEUE_PROFILING_ENABLE`` plus a trace viewer.
"""

from __future__ import annotations

import json
import os

from repro.clsim.runtime import CommandQueue

__all__ = ["queue_to_chrome_trace", "write_chrome_trace"]


def queue_to_chrome_trace(queue: CommandQueue) -> list[dict]:
    """Convert queue events to Chrome trace 'complete' (X) events.

    In-order queue semantics: each launch starts when the previous one
    finishes.  Timestamps are microseconds of *simulated* device time.
    """
    events = []
    cursor_us = 0.0
    for event in queue.events:
        duration_us = event.seconds * 1e6
        events.append(
            {
                "name": event.kernel_name,
                "cat": "kernel",
                "ph": "X",
                "ts": cursor_us,
                "dur": duration_us,
                "pid": 0,
                "tid": 0,
                "args": {
                    "compute_s": event.cost.compute_s,
                    "memory_s": event.cost.memory_s,
                    "overhead_s": event.cost.overhead_s,
                    "bound": event.cost.bound,
                },
            }
        )
        cursor_us += duration_us
    return events


def write_chrome_trace(queue: CommandQueue, path: str | os.PathLike) -> None:
    """Write the queue timeline as a Chrome-trace JSON file."""
    payload = {
        "traceEvents": queue_to_chrome_trace(queue),
        "displayTimeUnit": "ms",
        "otherData": {"device": queue.device.name},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
