"""OpenCL-style device simulator.

The paper runs one OpenCL code base on three architectures (16-core Xeon
E5-2670, Tesla K20c, Xeon Phi 31SP).  None of that hardware exists in this
environment, so this package simulates it at two levels:

* **Functional** — :mod:`repro.clsim.interpreter` executes kernels written
  against an OpenCL-like API (NDRange, work-groups, work-items, barriers,
  local/private/global memory) with real barrier semantics, so the 8 code
  variants can be validated for correctness.
* **Performance** — :mod:`repro.clsim.costmodel` derives launch times from
  the same architectural mechanisms the paper reasons about: warp/SIMD
  divergence, coalesced vs. scattered transactions, register spilling,
  scratchpad staging, occupancy and lane utilization, parameterized by the
  published specs of the three devices (:mod:`repro.clsim.device`).
"""

from repro.clsim.device import (
    DeviceKind,
    DeviceSpec,
    INTEL_XEON_E5_2670_X2,
    NVIDIA_TESLA_K20C,
    INTEL_XEON_PHI_31SP,
    ALL_DEVICES,
    device_by_name,
)
from repro.clsim.ndrange import NDRange, WorkItemId
from repro.clsim.memory import Buffer, LocalMemory, AccessCounter
from repro.clsim.kernel import Kernel, BARRIER
from repro.clsim.interpreter import execute_ndrange
from repro.clsim.runtime import Context, CommandQueue, ProfilingEvent
from repro.clsim.costmodel import (
    CostModel,
    LaunchCost,
    OptFlags,
    StepCosts,
)
from repro.clsim.calibration import Calibration, default_calibration
from repro.clsim.occupancy import OccupancyReport, occupancy
from repro.clsim.coalescing import (
    AccessPattern,
    transactions_for,
    efficiency_for,
    flat_smat_pattern,
    batched_column_pattern,
)
from repro.clsim.transfer import TransferCost, training_transfer_cost
from repro.clsim.divergence import (
    DivergenceReport,
    analyze_divergence,
    sort_rows_by_length,
)
from repro.clsim.roofline import RooflinePoint, RooflineReport, roofline_analysis

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "INTEL_XEON_E5_2670_X2",
    "NVIDIA_TESLA_K20C",
    "INTEL_XEON_PHI_31SP",
    "ALL_DEVICES",
    "device_by_name",
    "NDRange",
    "WorkItemId",
    "Buffer",
    "LocalMemory",
    "AccessCounter",
    "Kernel",
    "BARRIER",
    "execute_ndrange",
    "Context",
    "CommandQueue",
    "ProfilingEvent",
    "CostModel",
    "LaunchCost",
    "OptFlags",
    "StepCosts",
    "Calibration",
    "default_calibration",
    "OccupancyReport",
    "occupancy",
    "AccessPattern",
    "transactions_for",
    "efficiency_for",
    "flat_smat_pattern",
    "batched_column_pattern",
    "TransferCost",
    "training_transfer_cost",
    "DivergenceReport",
    "analyze_divergence",
    "sort_rows_by_length",
    "RooflinePoint",
    "RooflineReport",
    "roofline_analysis",
]
