"""Device specifications for the three platforms of the paper (§IV-A).

The numbers are the published microarchitectural parameters; the cost model
combines them with calibration constants (:mod:`repro.clsim.calibration`).

* **Intel Xeon E5-2670 ×2** — dual-socket, 8 cores each @ 2.6 GHz, AVX
  (8-wide float SIMD), ~102 GB/s aggregate (2 × 51.2 GB/s), 64-byte
  cachelines, 32 KB L1d per core, no scratchpad (OpenCL local memory is
  emulated in cache).
* **NVIDIA Tesla K20c** — 13 SMX @ 0.706 GHz, 192 CUDA cores each,
  warp = 32, 208 GB/s GDDR5, 48 KB scratchpad + 256 KB registers per SMX,
  up to 255 registers addressable per thread (§III-C1).
* **Intel Xeon Phi 31SP** — 57 in-order cores @ 1.1 GHz, 4 hardware
  threads per core, 512-bit SIMD (16-wide float), 6 GB GDDR5 @ ~240 GB/s
  theoretical (practically far lower), 64-byte cachelines, no scratchpad.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "INTEL_XEON_E5_2670_X2",
    "NVIDIA_TESLA_K20C",
    "INTEL_XEON_PHI_31SP",
    "ALL_DEVICES",
    "device_by_name",
]


class DeviceKind(enum.Enum):
    """The three architecture classes the paper targets."""

    CPU = "cpu"
    GPU = "gpu"
    MIC = "mic"


@dataclass(frozen=True)
class DeviceSpec:
    """Microarchitectural description of a simulated OpenCL device."""

    name: str
    kind: DeviceKind
    compute_units: int  # SMs (GPU) or cores (CPU/MIC)
    hw_width: int  # warp size (GPU) or float SIMD width (CPU/MIC)
    threads_per_unit: int  # resident warp slots (GPU) or HW threads (CPU/MIC)
    clock_ghz: float
    global_bandwidth_gbs: float
    mem_latency_cycles: int
    cacheline_bytes: int
    l1_bytes: int  # per compute unit
    has_scratchpad: bool
    scratchpad_bytes: int  # per compute unit (0 when emulated)
    registers_per_thread: int  # addressable registers (floats)
    register_file_bytes: int  # per compute unit
    issue_width: float  # strip-instructions issued per cycle per unit
    launch_overhead_us: float  # per kernel launch (driver + dispatch)

    def __post_init__(self) -> None:
        if self.compute_units <= 0 or self.hw_width <= 0:
            raise ValueError("compute_units and hw_width must be positive")
        if self.clock_ghz <= 0 or self.global_bandwidth_gbs <= 0:
            raise ValueError("clock and bandwidth must be positive")

    @property
    def peak_strips_per_second(self) -> float:
        """Aggregate strip-instruction issue rate (strips/s)."""
        return self.compute_units * self.issue_width * self.clock_ghz * 1e9

    @property
    def concurrent_groups_hint(self) -> int:
        """How many work-groups the device wants in flight to stay busy."""
        return self.compute_units * self.threads_per_unit

    def warps_per_group(self, ws: int) -> int:
        """Hardware strips (warps / SIMD rows) a group of size ``ws`` occupies."""
        if ws <= 0:
            raise ValueError("work-group size must be positive")
        return -(-ws // self.hw_width)

    def __str__(self) -> str:
        return f"{self.name} [{self.kind.value}]"


INTEL_XEON_E5_2670_X2 = DeviceSpec(
    name="Intel Xeon E5-2670 x2",
    kind=DeviceKind.CPU,
    compute_units=16,
    hw_width=8,  # AVX, 8 floats
    threads_per_unit=2,  # HyperThreading
    clock_ghz=2.6,
    global_bandwidth_gbs=102.4,
    mem_latency_cycles=200,
    cacheline_bytes=64,
    l1_bytes=32 * 1024,
    has_scratchpad=False,
    scratchpad_bytes=0,
    registers_per_thread=16,  # architectural YMM registers
    register_file_bytes=16 * 32,
    issue_width=1.0,
    launch_overhead_us=15.0,
)

NVIDIA_TESLA_K20C = DeviceSpec(
    name="NVIDIA Tesla K20c",
    kind=DeviceKind.GPU,
    compute_units=13,
    hw_width=32,  # warp
    threads_per_unit=64,  # resident warps per SMX
    clock_ghz=0.706,
    global_bandwidth_gbs=208.0,
    mem_latency_cycles=400,
    cacheline_bytes=128,  # memory transaction granularity
    l1_bytes=16 * 1024,
    has_scratchpad=True,
    scratchpad_bytes=48 * 1024,
    registers_per_thread=255,  # GK110 raised the limit from 63 (§III-C1)
    register_file_bytes=256 * 1024,
    issue_width=4.0,  # 4 warp schedulers per SMX
    launch_overhead_us=4000.0,  # dispatch + per-step sync + PCIe factor traffic
)

INTEL_XEON_PHI_31SP = DeviceSpec(
    name="Intel Xeon Phi 31SP",
    kind=DeviceKind.MIC,
    compute_units=57,
    hw_width=16,  # 512-bit SIMD, 16 floats
    threads_per_unit=4,
    clock_ghz=1.1,
    global_bandwidth_gbs=240.0,
    mem_latency_cycles=300,
    cacheline_bytes=64,
    l1_bytes=32 * 1024,
    has_scratchpad=False,
    scratchpad_bytes=0,
    registers_per_thread=32,  # ZMM registers
    register_file_bytes=32 * 64,
    issue_width=0.5,  # in-order, cannot issue back-to-back from one thread
    launch_overhead_us=2000.0,  # MPSS offload dispatch + PCIe sync
)

ALL_DEVICES: tuple[DeviceSpec, ...] = (
    INTEL_XEON_E5_2670_X2,
    NVIDIA_TESLA_K20C,
    INTEL_XEON_PHI_31SP,
)

_BY_SHORT_NAME = {
    "cpu": INTEL_XEON_E5_2670_X2,
    "e5-2670": INTEL_XEON_E5_2670_X2,
    "gpu": NVIDIA_TESLA_K20C,
    "k20c": NVIDIA_TESLA_K20C,
    "mic": INTEL_XEON_PHI_31SP,
    "31sp": INTEL_XEON_PHI_31SP,
    "xeon-phi": INTEL_XEON_PHI_31SP,
}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a device preset by short name (``cpu``/``gpu``/``mic``/...)."""
    try:
        return _BY_SHORT_NAME[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_SHORT_NAME))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
