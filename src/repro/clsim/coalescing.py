"""Memory-transaction analysis for warp/SIMD access patterns.

Quantifies §III-B's diagnosis: with the flat mapping, neighbouring
threads' accesses sit at least ``(k+1)·k`` elements apart (each thread
owns a private k×k smat plus a k svec), so every lane's access costs a
full transaction; with thread batching, a work-group's lanes read
consecutive elements of one Y column and coalesce.

The analyzer takes the *addresses touched by the lanes of one hardware
strip in one step* and counts the memory transactions (GPU) or cachelines
(CPU/MIC) they span — the quantity behind the calibration's efficiency
constants, validated in tests/clsim/test_coalescing.py.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.device import DeviceSpec

__all__ = [
    "AccessPattern",
    "transactions_for",
    "efficiency_for",
    "flat_smat_pattern",
    "batched_column_pattern",
]


@dataclass(frozen=True)
class AccessPattern:
    """Byte addresses touched by the active lanes in one access step."""

    addresses: np.ndarray  # one address per active lane
    element_bytes: int = 4

    def __post_init__(self) -> None:
        addresses = np.asarray(self.addresses, dtype=np.int64)
        if addresses.ndim != 1 or addresses.size == 0:
            raise ValueError("need a 1-D, non-empty address vector")
        if addresses.min() < 0:
            raise ValueError("addresses must be non-negative")
        if self.element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        object.__setattr__(self, "addresses", addresses)

    @property
    def useful_bytes(self) -> int:
        return int(self.addresses.size) * self.element_bytes


def transactions_for(pattern: AccessPattern, device: DeviceSpec) -> int:
    """Number of ``device.cacheline_bytes`` transactions the step needs."""
    lines = np.unique(pattern.addresses // device.cacheline_bytes)
    return int(lines.size)


def efficiency_for(pattern: AccessPattern, device: DeviceSpec) -> float:
    """Useful bytes / bytes moved — 1.0 means perfectly coalesced."""
    moved = transactions_for(pattern, device) * device.cacheline_bytes
    return pattern.useful_bytes / moved


# ----------------------------------------------------------------------
# The two canonical patterns of the paper
# ----------------------------------------------------------------------


def flat_smat_pattern(device: DeviceSpec, k: int, element_bytes: int = 4) -> AccessPattern:
    """One step of the flat baseline: each lane touches its own private
    smat, ``(k+1)·k`` elements away from its neighbour (§III-B)."""
    lanes = np.arange(device.hw_width, dtype=np.int64)
    stride = (k + 1) * k * element_bytes
    return AccessPattern(lanes * stride, element_bytes)


def batched_column_pattern(
    base_element: int, k: int, element_bytes: int = 4
) -> AccessPattern:
    """One step of the batched kernels: the group's first ``k`` lanes read
    the ``k`` consecutive elements of one Y column."""
    lanes = np.arange(k, dtype=np.int64)
    return AccessPattern((base_element + lanes) * element_bytes, element_bytes)
