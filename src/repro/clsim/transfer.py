"""Host ↔ device transfer model (PCIe for the K20c and the Phi).

The paper's GPU and MIC hang off PCIe ("the GPU and the MIC are connected
to the CPU with different PCIe slots", §IV-A).  A training run must ship
the CSR/CSC structures and the initial factors down once, and read the
factors back at the end; the CPU device transfers nothing.  These costs
are separate from the per-kernel launch overhead (which models dispatch +
sync) and matter for one-shot small jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clsim.device import DeviceKind, DeviceSpec

__all__ = ["TransferCost", "training_transfer_cost", "PCIE_BANDWIDTH_GBS", "PCIE_LATENCY_S"]

#: PCIe 2.0 x16 effective bandwidth (both devices in the paper's testbed).
PCIE_BANDWIDTH_GBS = 6.0
#: Per-transfer setup latency (driver + DMA programming).
PCIE_LATENCY_S = 20e-6

_FLOAT = 4
_INT = 4


@dataclass(frozen=True)
class TransferCost:
    """Bytes and seconds of host↔device traffic for one training run."""

    host_to_device_bytes: int
    device_to_host_bytes: int
    transfers: int

    @property
    def seconds(self) -> float:
        total = self.host_to_device_bytes + self.device_to_host_bytes
        return total / (PCIE_BANDWIDTH_GBS * 1e9) + self.transfers * PCIE_LATENCY_S


def training_transfer_cost(
    device: DeviceSpec,
    m: int,
    n: int,
    nnz: int,
    k: int,
) -> TransferCost:
    """Setup + teardown traffic for a full ALS training run.

    Down: the CSR and CSC views of R (values + indices + pointers) and
    the initial Y.  Up: the final X and Y.  Iterations themselves stay
    on-device (the factors ping-pong between the two half-sweep kernels
    without returning to the host).
    """
    if device.kind is DeviceKind.CPU:
        return TransferCost(0, 0, 0)  # host memory is device memory
    if min(m, n, nnz, k) <= 0:
        raise ValueError("m, n, nnz and k must be positive")
    csr = nnz * (_FLOAT + _INT) + (m + 1) * _INT
    csc = nnz * (_FLOAT + _INT) + (n + 1) * _INT
    factors_down = n * k * _FLOAT
    down = csr + csc + factors_down
    up = (m + n) * k * _FLOAT
    # R (x2 views), initial Y, final X, final Y.
    return TransferCost(down, up, transfers=5)
