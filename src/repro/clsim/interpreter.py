"""Work-item-level execution of simulated kernels.

Executes an :class:`~repro.clsim.ndrange.NDRange` launch group by group.
Within a group, every work-item's generator advances to its next barrier
before any item proceeds past it — the lock-step semantics OpenCL
guarantees.  A :class:`BarrierDivergenceError` is raised when items of one
group disagree on the number of barriers they reach, which on real
hardware is undefined behaviour (a hang); surfacing it makes the kernel
tests meaningful.

This path is intentionally scalar and slow; it exists to *validate* the
vectorized fast paths on small instances, not to run full datasets.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.clsim.kernel import BARRIER, Kernel
from repro.clsim.memory import LocalMemory
from repro.clsim.ndrange import NDRange

__all__ = ["BarrierDivergenceError", "execute_ndrange"]


class BarrierDivergenceError(RuntimeError):
    """Work-items of one group reached different barrier counts."""


def execute_ndrange(
    kernel: Kernel,
    ndrange: NDRange,
    args: Mapping[str, object],
    scratchpad_capacity: int | None = None,
) -> None:
    """Run ``kernel`` over ``ndrange`` with the given arguments.

    ``args`` are passed to the kernel body as keyword arguments; buffers
    are shared across all groups (global memory), local memory is
    instantiated fresh per group.
    """
    allocations = kernel.local_allocations(**args)
    for group_id in ndrange:
        local = {
            name: LocalMemory(
                shape,
                dtype=dtype if dtype is not None else np.float32,
                capacity_bytes=scratchpad_capacity,
            )
            for name, (shape, dtype) in allocations.items()
        }
        if scratchpad_capacity is not None:
            used = sum(mem.nbytes for mem in local.values())
            if used > scratchpad_capacity:
                raise MemoryError(
                    f"group local memory {used} B exceeds scratchpad "
                    f"{scratchpad_capacity} B"
                )
        _run_group(kernel, ndrange, group_id, local, args)


def _run_group(
    kernel: Kernel,
    ndrange: NDRange,
    group_id: int,
    local: dict[str, LocalMemory],
    args: Mapping[str, object],
) -> None:
    generators = []
    for item in ndrange.group_items(group_id):
        gen = kernel.body(item, local, **args)
        generators.append(gen)

    live = list(range(len(generators)))
    barrier_round = 0
    while live:
        arrived: list[int] = []
        finished: list[int] = []
        for idx in live:
            try:
                token = next(generators[idx])
            except StopIteration:
                finished.append(idx)
                continue
            if token is not BARRIER:
                raise TypeError(
                    f"kernel {kernel.name!r} yielded {token!r}; only BARRIER "
                    "may be yielded"
                )
            arrived.append(idx)
        if arrived and finished:
            raise BarrierDivergenceError(
                f"kernel {kernel.name!r}, group {group_id}, barrier round "
                f"{barrier_round}: {len(arrived)} item(s) at a barrier while "
                f"{len(finished)} item(s) already returned"
            )
        live = arrived
        barrier_round += 1
