"""Occupancy analysis: how many work-groups fit in flight per compute unit.

On the K20c a work-group's residency is limited by thread slots, resident
group slots, registers and scratchpad; on CPU/MIC by hardware thread
contexts.  The paper's §V-E reasoning about idle warps and the
recommendation that the block size be "the minimum integer number larger
than the latent factor" are occupancy statements — this module makes them
queryable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clsim.device import DeviceKind, DeviceSpec

__all__ = ["OccupancyReport", "occupancy"]

# GK110 limits (CUDA occupancy tables); CPU/MIC analogues are thread
# contexts per core.
_GPU_MAX_GROUPS_PER_CU = 16
_GPU_MAX_THREADS_PER_CU = 2048


@dataclass(frozen=True)
class OccupancyReport:
    """Residency of one kernel configuration on one device."""

    device: str
    ws: int
    groups_per_cu: int
    limiting_resource: str
    active_lanes_per_cu: int  # lanes doing useful work (≤ hw threads)
    lane_utilization: float  # useful lanes / occupied lane slots

    @property
    def groups_in_flight(self) -> int:
        return self.groups_per_cu  # per compute unit by definition

    def __str__(self) -> str:
        return (
            f"{self.device}: ws={self.ws} -> {self.groups_per_cu} groups/CU "
            f"(limited by {self.limiting_resource}), lane util "
            f"{self.lane_utilization:.0%}"
        )


def occupancy(
    device: DeviceSpec,
    ws: int,
    k: int,
    registers_per_item: int = 32,
    local_bytes_per_group: int = 0,
) -> OccupancyReport:
    """Compute residency for a thread-batched ALS kernel launch.

    ``registers_per_item`` defaults to the register-variant footprint
    (k-strip accumulators + indices); ``local_bytes_per_group`` is the
    staging tile, zero for unstaged variants.
    """
    if ws <= 0 or k <= 0:
        raise ValueError("ws and k must be positive")
    if registers_per_item <= 0:
        raise ValueError("registers_per_item must be positive")
    if local_bytes_per_group < 0:
        raise ValueError("local_bytes_per_group must be non-negative")

    useful = min(ws, k)
    if device.kind is DeviceKind.GPU:
        limits = {
            "group slots": _GPU_MAX_GROUPS_PER_CU,
            "thread slots": _GPU_MAX_THREADS_PER_CU
            // (device.warps_per_group(ws) * device.hw_width),
            "registers": device.register_file_bytes
            // max(1, 4 * registers_per_item * ws),
        }
        if local_bytes_per_group:
            limits["scratchpad"] = device.scratchpad_bytes // local_bytes_per_group
        occupied_lanes_per_group = device.warps_per_group(ws) * device.hw_width
    else:
        # One group binds one hardware thread context; SIMD lanes within.
        limits = {"thread contexts": device.threads_per_unit}
        occupied_lanes_per_group = device.warps_per_group(ws) * device.hw_width

    limiting = min(limits, key=limits.get)
    groups = max(0, int(limits[limiting]))
    active = groups * useful
    occupied = groups * occupied_lanes_per_group
    return OccupancyReport(
        device=device.name,
        ws=ws,
        groups_per_cu=groups,
        limiting_resource=limiting,
        active_lanes_per_cu=active,
        lane_utilization=active / occupied if occupied else 0.0,
    )
