"""Kernel abstraction for the functional simulator.

A simulated kernel is a Python *generator function* with signature

    def body(item: WorkItemId, local: dict[str, LocalMemory], **args):
        ...
        yield BARRIER          # barrier(CLK_LOCAL_MEM_FENCE)
        ...

Each work-item of a group runs the generator up to the next ``yield``;
the interpreter advances all items of the group in lock-step between
barriers, which gives real OpenCL barrier semantics (§III-C2's staging
pattern needs them: all items cooperate to fill the scratchpad, barrier,
then compute).

``local_decl`` declares the group's ``__local`` allocations, sized per
launch — exactly like OpenCL's kernel-argument local buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["BARRIER", "Kernel", "LocalDecl"]


class _Barrier:
    """Sentinel yielded by kernel bodies at barrier points."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BARRIER"


BARRIER = _Barrier()


@dataclass(frozen=True)
class LocalDecl:
    """Declaration of one ``__local`` allocation: shape may depend on args."""

    name: str
    shape: Callable[..., tuple[int, ...]]
    dtype: object = None  # defaults to float32 in the interpreter


@dataclass(frozen=True)
class Kernel:
    """A named kernel body plus its local-memory declarations."""

    name: str
    body: Callable  # generator function(item, local, **args)
    local_decls: tuple[LocalDecl, ...] = field(default_factory=tuple)

    def local_allocations(self, **args) -> dict[str, tuple[tuple[int, ...], object]]:
        """Resolve local-memory shapes for a concrete launch."""
        out: dict[str, tuple[tuple[int, ...], object]] = {}
        for decl in self.local_decls:
            shape = decl.shape(**args)
            if any(s < 0 for s in shape):
                raise ValueError(f"negative local shape for {decl.name}: {shape}")
            out[decl.name] = (shape, decl.dtype)
        return out
