"""Thin OpenCL-style runtime objects tying execution to the cost model.

Solvers create a :class:`Context` per device, allocate :class:`Buffer`
objects through it, and enqueue simulated kernel launches on a
:class:`CommandQueue`.  Each enqueue records a :class:`ProfilingEvent`
(mirroring ``CL_QUEUE_PROFILING_ENABLE``); the queue's total simulated
time is what the benchmark harness reports as "execution time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import CostModel, LaunchCost
from repro.clsim.device import DeviceSpec
from repro.clsim.memory import Buffer

__all__ = ["ProfilingEvent", "CommandQueue", "Context"]


@dataclass(frozen=True)
class ProfilingEvent:
    """Record of one simulated kernel launch."""

    kernel_name: str
    cost: LaunchCost

    @property
    def seconds(self) -> float:
        return self.cost.seconds


@dataclass
class CommandQueue:
    """An in-order queue accumulating simulated launch times."""

    device: DeviceSpec
    events: list[ProfilingEvent] = field(default_factory=list)

    def enqueue(self, kernel_name: str, cost: LaunchCost) -> ProfilingEvent:
        event = ProfilingEvent(kernel_name, cost)
        self.events.append(event)
        return event

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    def seconds_by_kernel(self) -> dict[str, float]:
        """Aggregate simulated time per kernel name (the hotspot profile)."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kernel_name] = out.get(e.kernel_name, 0.0) + e.seconds
        return out

    def reset(self) -> None:
        self.events.clear()


class Context:
    """Device context: buffer allocation plus the device's cost model."""

    def __init__(self, device: DeviceSpec, calibration: Calibration | None = None):
        self.device = device
        self.cost_model = CostModel(device, calibration)

    def create_queue(self) -> CommandQueue:
        return CommandQueue(self.device)

    def create_buffer(self, array: np.ndarray, name: str = "buffer") -> Buffer:
        return Buffer(array, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context({self.device})"
