"""NDRange index space (1-D, which is all the ALS kernels need).

The paper launches kernels with the thread configuration ``8192 × 32``
(global size × work-group size).  :class:`NDRange` validates the pair and
enumerates work-groups; :class:`WorkItemId` carries the per-item indices an
OpenCL kernel reads via ``get_global_id`` / ``get_local_id`` etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["NDRange", "WorkItemId"]


@dataclass(frozen=True)
class WorkItemId:
    """Indices visible to one work-item, mirroring the OpenCL query functions."""

    global_id: int  # get_global_id(0)
    local_id: int  # get_local_id(0)
    group_id: int  # get_group_id(0)
    local_size: int  # get_local_size(0)
    num_groups: int  # get_num_groups(0)

    @property
    def global_size(self) -> int:
        return self.local_size * self.num_groups


@dataclass(frozen=True)
class NDRange:
    """A 1-D launch configuration ``(global_size, local_size)``.

    OpenCL requires the global size to be a multiple of the work-group
    size; we enforce the same.
    """

    global_size: int
    local_size: int

    def __post_init__(self) -> None:
        if self.global_size <= 0 or self.local_size <= 0:
            raise ValueError("global and local sizes must be positive")
        if self.global_size % self.local_size:
            raise ValueError(
                f"global size {self.global_size} is not a multiple of "
                f"work-group size {self.local_size}"
            )

    @classmethod
    def paper_default(cls) -> "NDRange":
        """The thread configuration used throughout the evaluation (§V)."""
        return cls(global_size=8192 * 32, local_size=32)

    @property
    def num_groups(self) -> int:
        return self.global_size // self.local_size

    def group_items(self, group_id: int) -> Iterator[WorkItemId]:
        """Enumerate the work-items of one group."""
        if not 0 <= group_id < self.num_groups:
            raise IndexError(f"group {group_id} out of range")
        base = group_id * self.local_size
        for lx in range(self.local_size):
            yield WorkItemId(
                global_id=base + lx,
                local_id=lx,
                group_id=group_id,
                local_size=self.local_size,
                num_groups=self.num_groups,
            )

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_groups))
