"""Data-parallel multi-device execution model.

cuMF (the paper's HPDC'16 comparator) scales ALS across multiple GPUs
with data parallelism: each device owns a partition of the rows, updates
its slice of X against a full replica of Y, and the replicas are
re-synchronized before the opposite half-sweep (the paper's related-work
section describes the scheme, including topology-aware reduction).  This
module prices that scheme on any homogeneous set of simulated devices:

    t_half_sweep = max_d compute(partition_d)  +  allgather(factor slice)

The allgather goes through PCIe (the paper's testbed has no NVLink); a
topology-aware ring moves each byte twice (up to the host, back down).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import CostModel, OptFlags
from repro.clsim.device import DeviceSpec
from repro.clsim.transfer import PCIE_BANDWIDTH_GBS, PCIE_LATENCY_S
from repro.sparse.partition import partition_rows_balanced

__all__ = ["MultiDeviceRun", "simulate_multi_device"]

_FLOAT = 4


@dataclass(frozen=True)
class MultiDeviceRun:
    """Timing decomposition of a data-parallel training run."""

    n_devices: int
    compute_seconds: float
    comm_seconds: float
    iterations: int

    @property
    def seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def speedup_over(self, single: "MultiDeviceRun") -> float:
        return single.seconds / self.seconds

    @property
    def parallel_efficiency_denominator(self) -> float:
        return float(self.n_devices)


def _allgather_seconds(total_bytes: int, n_devices: int) -> float:
    """Ring allgather over PCIe: each device sends its slice (n−1) times
    through host memory (2 PCIe crossings per hop)."""
    if n_devices == 1:
        return 0.0
    slice_bytes = total_bytes / n_devices
    hops = n_devices - 1
    wire = 2.0 * slice_bytes * hops / (PCIE_BANDWIDTH_GBS * 1e9)
    return wire + hops * PCIE_LATENCY_S


def simulate_multi_device(
    device: DeviceSpec,
    n_devices: int,
    row_lengths: np.ndarray,
    col_lengths: np.ndarray,
    k: int = 10,
    ws: int = 32,
    flags: OptFlags | None = None,
    iterations: int = 5,
    calibration: Calibration | None = None,
) -> MultiDeviceRun:
    """Price a data-parallel ALS run on ``n_devices`` copies of ``device``.

    Rows (and, for the Y half-sweep, columns) are partitioned by nnz with
    the balanced partitioner; per half-sweep the wall time is the slowest
    partition's compute plus the factor allgather.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    flags = flags or OptFlags(registers=True, local_mem=True)
    cm = CostModel(device, calibration)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    col_lengths = np.asarray(col_lengths, dtype=np.int64)

    compute = 0.0
    comm = 0.0
    for lengths, count in ((row_lengths, len(row_lengths)), (col_lengths, len(col_lengths))):
        if n_devices == 1:
            worst = cm.batched_half_sweep(lengths, k, ws, flags).seconds
        else:
            part = partition_rows_balanced(lengths, n_devices)
            worst = max(
                cm.batched_half_sweep(
                    lengths[part.assignment == d], k, ws, flags
                ).seconds
                for d in range(n_devices)
            )
        compute += worst * iterations
        # After the half-sweep every device needs the full updated factor.
        comm += _allgather_seconds(count * k * _FLOAT, n_devices) * iterations
    return MultiDeviceRun(
        n_devices=n_devices,
        compute_seconds=compute,
        comm_seconds=comm,
        iterations=iterations,
    )
