"""Branch-divergence analysis for the flat one-thread-per-row mapping.

§III-B: "When two neighbouring threads updating two continuous
rows/columns, it is likely that the thread on the longer row takes more
time while the other thread stays idle."  This module quantifies that:
given the nnz-per-row sequence and the hardware window (warp or SIMD
width), it reports wall iterations, the busy-lane ratio, and the wasted
lane-cycles — the inputs behind the flat cost model's window term and
the motivation for the row-reordering experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.device import DeviceSpec

__all__ = ["DivergenceReport", "analyze_divergence", "sort_rows_by_length"]


@dataclass(frozen=True)
class DivergenceReport:
    """Lane-utilization summary of a flat launch."""

    window: int
    n_windows: int
    wall_iterations: int  # Σ per-window max(ω)
    busy_iterations: int  # Σ ω (useful lane-iterations)
    lane_slots: int  # wall_iterations × window

    @property
    def efficiency(self) -> float:
        """Busy lane-iterations / issued lane slots (1.0 = no divergence)."""
        return self.busy_iterations / self.lane_slots if self.lane_slots else 1.0

    @property
    def wasted_fraction(self) -> float:
        return 1.0 - self.efficiency

    @property
    def divergence_factor(self) -> float:
        """How much longer the flat launch runs than a perfectly balanced
        one with the same total work."""
        if self.busy_iterations == 0:
            return 1.0
        balanced_wall = self.busy_iterations / self.window
        return self.wall_iterations / balanced_wall

    def __str__(self) -> str:
        return (
            f"window={self.window}: {self.n_windows} windows, lane efficiency "
            f"{self.efficiency:.1%}, divergence factor {self.divergence_factor:.2f}x"
        )


def analyze_divergence(
    lengths: np.ndarray, device_or_window: DeviceSpec | int
) -> DivergenceReport:
    """Analyze the flat mapping of ``lengths`` onto warp/SIMD windows."""
    window = (
        device_or_window.hw_width
        if isinstance(device_or_window, DeviceSpec)
        else int(device_or_window)
    )
    if window <= 0:
        raise ValueError("window must be positive")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return DivergenceReport(window, 0, 0, 0, 0)
    if lengths.min() < 0:
        raise ValueError("row lengths must be non-negative")
    pad = (-lengths.size) % window
    tiles = np.pad(lengths, (0, pad)).reshape(-1, window)
    wall = int(tiles.max(axis=1).sum())
    busy = int(lengths.sum())
    return DivergenceReport(
        window=window,
        n_windows=tiles.shape[0],
        wall_iterations=wall,
        busy_iterations=busy,
        lane_slots=wall * window,
    )


def sort_rows_by_length(lengths: np.ndarray) -> np.ndarray:
    """The classic divergence mitigation: order rows by descending nnz so
    each window holds near-equal rows.  Returns the reordered sequence
    (the permutation would be applied to the row ids in a real launch)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.sort(lengths)[::-1].copy()
