"""Roofline analysis of simulated kernel launches.

Places each ALS step on its device's roofline: operational intensity
(useful flops per byte of DRAM traffic) against attainable performance
``min(peak_flops, intensity × bandwidth)``.  The paper calls matrix
factorization "a typical bandwidth-limited kernel" (§III-C1); the
roofline quantifies which steps that is true for, per variant and device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clsim.calibration import Calibration
from repro.clsim.costmodel import CostModel, OptFlags
from repro.clsim.device import DeviceSpec

__all__ = ["RooflinePoint", "RooflineReport", "roofline_analysis"]

_FLOAT = 4


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline."""

    name: str
    flops: float  # useful floating-point operations
    bytes_moved: float  # modelled DRAM traffic
    seconds: float  # modelled launch time
    peak_flops: float  # device raw peak [flop/s]
    bandwidth: float  # device DRAM bandwidth [B/s]

    @property
    def intensity(self) -> float:
        """Operational intensity [flop/byte]."""
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")

    @property
    def ridge_intensity(self) -> float:
        """Intensity at which the device turns compute-bound."""
        return self.peak_flops / self.bandwidth

    @property
    def attainable_flops(self) -> float:
        return min(self.peak_flops, self.intensity * self.bandwidth)

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.seconds if self.seconds else 0.0

    @property
    def bound(self) -> str:
        return "compute" if self.intensity >= self.ridge_intensity else "memory"

    def __str__(self) -> str:
        return (
            f"{self.name:14s} I={self.intensity:7.2f} flop/B "
            f"({self.bound}-bound; ridge {self.ridge_intensity:.2f}), "
            f"achieved {self.achieved_flops / 1e9:.2f} GF/s of "
            f"{self.attainable_flops / 1e9:.2f} attainable"
        )


@dataclass(frozen=True)
class RooflineReport:
    device: str
    variant: str
    points: tuple[RooflinePoint, ...]

    def render(self) -> str:
        header = f"roofline: {self.device} [{self.variant}]"
        return "\n".join([header] + [f"  {p}" for p in self.points])


def roofline_analysis(
    device: DeviceSpec,
    row_lengths: np.ndarray,
    k: int = 10,
    ws: int = 32,
    flags: OptFlags | None = None,
    calibration: Calibration | None = None,
) -> RooflineReport:
    """Roofline positions of S1/S2/S3 for one half-sweep.

    Flops are the algorithmic counts (2 per multiply–accumulate); bytes
    and times come from the cost model, so the *achieved* points sit at
    or below the roof by construction — the report shows how far below,
    and which resource each step leans on.
    """
    flags = flags or OptFlags(registers=True, local_mem=True)
    lengths = np.asarray(row_lengths, dtype=np.float64)
    Z = float(lengths.sum())
    occupied = float((lengths > 0).sum())

    cm = CostModel(device, calibration)
    costs = cm.batched_half_sweep(lengths, k, ws, flags)
    # Classic roofline: the roof is the device's raw peak (2 flops per
    # lane per strip-issue — FMA), not the sustained rate; achieved
    # points from the cost model then show the efficiency gap.
    peak = device.peak_strips_per_second * device.hw_width * 2.0
    bw = device.global_bandwidth_gbs * 1e9

    flops = {
        "s1_gram": 2.0 * Z * k * (k + 1) / 2.0,
        "s2_rhs": 2.0 * Z * k,
        "s3_solve": occupied * (2.0 * k**3 / 3.0 + 2.0 * k**2),
    }
    # Useful traffic (not the inflated moved bytes): Y columns once per
    # step that reads them, ratings once, solution I/O.
    useful_bytes = {
        "s1_gram": Z * k * _FLOAT + occupied * k * k * _FLOAT,
        "s2_rhs": Z * (k + 1) * _FLOAT,
        "s3_solve": occupied * (k * k + 2 * k) * _FLOAT,
    }
    steps = {"s1_gram": costs.s1, "s2_rhs": costs.s2, "s3_solve": costs.s3}
    points = tuple(
        RooflinePoint(
            name=name,
            flops=flops[name],
            bytes_moved=useful_bytes[name],
            seconds=steps[name].seconds,
            peak_flops=peak,
            bandwidth=bw,
        )
        for name in ("s1_gram", "s2_rhs", "s3_solve")
    )
    return RooflineReport(device=device.name, variant=flags.label(), points=points)
