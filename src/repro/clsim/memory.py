"""Memory objects of the simulated OpenCL device.

* :class:`Buffer` — global-memory buffer wrapping a NumPy array, with an
  optional access counter so tests can assert *how* a kernel variant
  touches memory (e.g. that the local-memory variant reads each Y element
  from global memory exactly once per row).
* :class:`LocalMemory` — per-work-group scratchpad allocation; the
  interpreter creates one instance per group and enforces the device's
  scratchpad capacity.
* :class:`AccessCounter` — read/write tallies shared by the above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccessCounter", "Buffer", "LocalMemory"]


@dataclass
class AccessCounter:
    """Tally of element reads/writes performed through a memory object."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class Buffer:
    """A global-memory buffer.

    Kernels read/write through :meth:`load` / :meth:`store` so accesses can
    be counted; the vectorized fast paths use :attr:`array` directly (the
    counter is a validation tool, not a tax on the fast path).
    """

    __slots__ = ("name", "array", "counter")

    def __init__(self, array: np.ndarray, name: str = "buffer") -> None:
        self.array = np.asarray(array)
        self.name = name
        self.counter = AccessCounter()

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def load(self, index):
        """Element read (counted)."""
        value = self.array[index]
        self.counter.reads += 1 if np.isscalar(value) or value.ndim == 0 else int(np.size(value))
        return value

    def store(self, index, value) -> None:
        """Element write (counted)."""
        self.array[index] = value
        self.counter.writes += int(np.size(value))

    def __len__(self) -> int:
        return len(self.array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.name!r}, shape={self.array.shape}, dtype={self.array.dtype})"


class LocalMemory:
    """A per-work-group scratchpad allocation (OpenCL ``__local``).

    Created by the interpreter for each work-group; shared by the group's
    work-items and discarded at group exit, so no state leaks between
    groups (as on real hardware).
    """

    __slots__ = ("array", "counter", "capacity_bytes")

    def __init__(self, shape, dtype=np.float32, capacity_bytes: int | None = None) -> None:
        self.array = np.zeros(shape, dtype=dtype)
        self.counter = AccessCounter()
        self.capacity_bytes = capacity_bytes
        if capacity_bytes is not None and self.array.nbytes > capacity_bytes:
            raise MemoryError(
                f"local allocation of {self.array.nbytes} B exceeds the "
                f"device scratchpad of {capacity_bytes} B"
            )

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def load(self, index):
        value = self.array[index]
        self.counter.reads += 1 if np.isscalar(value) or value.ndim == 0 else int(np.size(value))
        return value

    def store(self, index, value) -> None:
        self.array[index] = value
        self.counter.writes += int(np.size(value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalMemory(shape={self.array.shape}, dtype={self.array.dtype})"
