"""repro — Efficient and Portable ALS Matrix Factorization (IPDPSW'17).

A full Python reproduction of Chen et al., "Efficient and Portable ALS
Matrix Factorization for Recommender Systems": the ALS solver, its 8
thread-batched code variants, the SAC15 and cuMF comparators, and an
OpenCL-style simulator of the paper's three devices (Xeon E5-2670,
Tesla K20c, Xeon Phi 31SP) that reproduces every table and figure of the
evaluation.

Quickstart::

    import repro

    problem = repro.generate_ratings(repro.MOVIELENS10M.scaled(1 / 256))
    model = repro.train_als(problem, repro.ALSConfig(k=10, lam=0.1))
    print(model.history[-1].train_rmse)

    solver = repro.PortableALS(repro.NVIDIA_TESLA_K20C)
    print(solver.simulate_spec(repro.NETFLIX))
"""

from repro.api import Recommender
from repro.core import (
    ALSConfig,
    ALSModel,
    IterationStats,
    train_als,
    train_als_wr,
    ImplicitConfig,
    ImplicitModel,
    train_implicit_als,
    regularized_loss,
    rmse,
    mae,
    predict_rating,
    predict_entries,
    recommend_top_n,
    init_factors,
    grid_search,
    evaluate_ranking,
    recommend_top_n_batch,
    BLOCK_SCHEDULES,
    make_blocks,
    subspace_iteration,
)
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    CSCMatrix,
    ShardStore,
    ShardedCSR,
    configure_sharding,
)
from repro.datasets import (
    DatasetSpec,
    MOVIELENS1M,
    MOVIELENS10M,
    NETFLIX,
    YAHOO_R1,
    YAHOO_R4,
    TABLE_I,
    dataset_by_name,
    generate_ratings,
    generate_ratings_chunked,
    degree_sequences,
    planted_problem,
    train_test_split,
    load_ratings,
    save_ratings,
    iter_rating_file,
    build_shard_store,
    build_store_from_rating_file,
)
from repro.clsim import (
    DeviceSpec,
    DeviceKind,
    INTEL_XEON_E5_2670_X2,
    NVIDIA_TESLA_K20C,
    INTEL_XEON_PHI_31SP,
    ALL_DEVICES,
    device_by_name,
    OptFlags,
)
from repro.kernels import Variant, all_variants, recommended_variant
from repro.solvers import PortableALS, Sac15Baseline, CuMF, SimulatedRun
from repro.autotune import exhaustive_search, VariantSelector, train_default_selector
from repro.extensions import SGDConfig, train_sgd, CCDConfig, train_ccd
from repro.serving import TopNEngine, TopNResult, configure_serving
from repro import obs

__version__ = "1.0.0"

__all__ = [
    # core
    "ALSConfig",
    "ALSModel",
    "IterationStats",
    "train_als",
    "train_als_wr",
    "ImplicitConfig",
    "ImplicitModel",
    "train_implicit_als",
    "regularized_loss",
    "rmse",
    "mae",
    "predict_rating",
    "predict_entries",
    "recommend_top_n",
    "init_factors",
    "grid_search",
    "Recommender",
    "evaluate_ranking",
    "recommend_top_n_batch",
    "BLOCK_SCHEDULES",
    "make_blocks",
    "subspace_iteration",
    # sparse
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ShardStore",
    "ShardedCSR",
    "configure_sharding",
    # datasets
    "DatasetSpec",
    "MOVIELENS1M",
    "MOVIELENS10M",
    "NETFLIX",
    "YAHOO_R1",
    "YAHOO_R4",
    "TABLE_I",
    "dataset_by_name",
    "generate_ratings",
    "generate_ratings_chunked",
    "degree_sequences",
    "planted_problem",
    "train_test_split",
    "load_ratings",
    "save_ratings",
    "iter_rating_file",
    "build_shard_store",
    "build_store_from_rating_file",
    # simulator
    "DeviceSpec",
    "DeviceKind",
    "INTEL_XEON_E5_2670_X2",
    "NVIDIA_TESLA_K20C",
    "INTEL_XEON_PHI_31SP",
    "ALL_DEVICES",
    "device_by_name",
    "OptFlags",
    # kernels / solvers / autotune
    "Variant",
    "all_variants",
    "recommended_variant",
    "PortableALS",
    "Sac15Baseline",
    "CuMF",
    "SimulatedRun",
    "exhaustive_search",
    "VariantSelector",
    "train_default_selector",
    "SGDConfig",
    "train_sgd",
    "CCDConfig",
    "train_ccd",
    # serving
    "TopNEngine",
    "TopNResult",
    "configure_serving",
    # observability
    "obs",
    "__version__",
]
