"""Out-of-core CSR: a packed on-disk shard store and a byte-budgeted view.

The binned/tiled substrate (PRs 2-5) bounds per-sweep *scratch*, but the
full CSR plus both factor matrices still had to fit in RAM — the paper's
Table I full-scale shapes (Netflix ~100M nnz, YahooMusic R4 ~700M nnz)
were untrainable on laptop-class memory even though the kernels are
fast.  This module is the host-memory analogue of cuMF's "partial data
on device" staging: the rating matrix lives on disk in a packed
directory format, and training streams contiguous *row ranges* of it
through the existing assembly/solver pipeline, one resident shard at a
time, under a byte budget.

Directory layout (written by :mod:`repro.datasets.shardio`)::

    store/
      meta.json            m, n, nnz, dtypes, format version
      rows.indptr.bin      int64[m + 1]   user-major CSR
      rows.indices.bin     int64[nnz]
      rows.values.bin      float32[nnz]
      cols.indptr.bin      int64[n + 1]   item-major (transpose) CSR
      cols.indices.bin     int64[nnz]
      cols.values.bin      float32[nnz]

Both orientations are materialized once at build time so each half-sweep
streams its natural layout sequentially — the X sweep walks ``rows``,
the Y sweep walks ``cols`` — instead of paying a transpose per sweep.
The ``cols`` orientation stores entries within each column in ascending
row order, which is exactly the order :meth:`CSCMatrix.from_csr`
produces, so a sweep over it is *bitwise* identical to the in-RAM path.

Row-range shards (not arbitrary row subsets) keep every on-disk read a
single contiguous slice.  Degree skew is no correctness concern — the
degree-bin grid is population-independent (see
:func:`repro.sparse.csr.build_degree_bins`), so assembling any row range
reproduces the full-matrix assembly bit for bit — and within the
resident shard the :class:`~repro.parallel.executor.SweepExecutor`
re-shards by nnz balance exactly as it does in RAM.

The shard byte budget resolves with the repo-wide precedence: explicit
argument > :func:`configure_sharding` (CLI) > ``REPRO_SHARD_BYTES`` env
var > :data:`DEFAULT_SHARD_BYTES`.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix, DegreeBin, build_degree_bins

__all__ = [
    "DEFAULT_SHARD_BYTES",
    "FORMAT_VERSION",
    "META_FILENAME",
    "ShardSpan",
    "ShardedCSR",
    "ShardStore",
    "configure_sharding",
    "is_shard_store",
    "orientation_filenames",
    "resolve_shard_bytes",
    "sharding_defaults",
]

#: On-disk format version; bumped when the directory layout changes.
FORMAT_VERSION = 1

META_FILENAME = "meta.json"

#: Default resident-shard byte budget (CSR bytes + per-row solver
#: scratch).  256 MB keeps one shard plus its double-buffered prefetch
#: comfortably inside laptop-class memory while leaving shards large
#: enough that per-shard overheads (binning, solve batching) amortize.
DEFAULT_SHARD_BYTES = 256 << 20

_ENV_SHARD_BYTES = "REPRO_SHARD_BYTES"

#: Smallest budget worth honoring: below ~1 MB the per-shard Python
#: overhead dwarfs the IO it schedules.  Spans may still exceed the
#: budget when a single row does (a shard always holds >= 1 row).
MIN_SHARD_BYTES = 1 << 20

INDEX_DTYPE = np.dtype(np.int64)
VALUE_DTYPES = ("float32", "float64")

# Process-wide default installed by configure_sharding (the CLI's
# --shard-bytes lands here).  None falls through to the environment,
# then the built-in.
_CONFIGURED: dict[str, int | None] = {"shard_bytes": None}


def _validate_shard_bytes(shard_bytes: int) -> int:
    shard_bytes = int(shard_bytes)
    if shard_bytes < MIN_SHARD_BYTES:
        raise ValueError(
            f"shard_bytes must be >= {MIN_SHARD_BYTES} (1 MB), got {shard_bytes}"
        )
    return shard_bytes


def configure_sharding(shard_bytes: int | None = None) -> None:
    """Install the process-wide shard byte budget (CLI flag lands here).

    ``None`` resets to "fall back to ``REPRO_SHARD_BYTES`` / built-in",
    so ``configure_sharding()`` restores the out-of-the-box behavior.
    """
    _CONFIGURED["shard_bytes"] = (
        None if shard_bytes is None else _validate_shard_bytes(shard_bytes)
    )


def resolve_shard_bytes(shard_bytes: int | None = None) -> int:
    """Explicit arg > configure_sharding > REPRO_SHARD_BYTES > default."""
    if shard_bytes is not None:
        return _validate_shard_bytes(shard_bytes)
    if _CONFIGURED["shard_bytes"] is not None:
        return _CONFIGURED["shard_bytes"]
    env = os.environ.get(_ENV_SHARD_BYTES)
    if env:
        try:
            return _validate_shard_bytes(int(env))
        except ValueError as exc:
            raise ValueError(f"{_ENV_SHARD_BYTES}={env!r}: {exc}") from None
    return DEFAULT_SHARD_BYTES


def sharding_defaults() -> dict[str, int]:
    """The currently resolved shard byte budget."""
    return {"shard_bytes": resolve_shard_bytes(None)}


def orientation_filenames(orientation: str) -> tuple[str, str, str]:
    """``(indptr, indices, values)`` filenames for one orientation."""
    if orientation not in ("rows", "cols"):
        raise ValueError(f"orientation must be 'rows' or 'cols', got {orientation!r}")
    return (
        f"{orientation}.indptr.bin",
        f"{orientation}.indices.bin",
        f"{orientation}.values.bin",
    )


def _open_flat(path: Path, dtype: np.dtype, count: int) -> np.ndarray:
    """Memory-map a raw array file (or an empty array for zero-length).

    ``np.memmap`` refuses zero-length mappings, so empty components
    (an all-empty matrix) come back as ordinary empty arrays.
    """
    if count == 0:
        return np.empty(0, dtype=dtype)
    expected = count * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path} holds {actual} bytes, expected {expected} "
            f"({count} x {dtype.name})"
        )
    return np.memmap(path, dtype=dtype, mode="r", shape=(count,))


def _release_pages(arr: np.ndarray, start: int, stop: int) -> None:
    """Best-effort ``madvise(MADV_DONTNEED)`` over ``arr[start:stop]``.

    Read-only file-backed pages that were touched (the shard-load copy)
    stay resident — and counted in this process's RSS — until memory
    pressure evicts them, which on a large-RAM host is never.  Dropping
    them immediately after the copy is what makes "peak RSS ~= one
    resident shard" true in practice, not just in accounting.
    """
    mm = getattr(arr, "_mmap", None)
    if mm is None or stop <= start:
        return
    page = mmap.PAGESIZE
    lo = (start * arr.itemsize) // page * page
    hi = min(-(-(stop * arr.itemsize) // page) * page, len(mm))
    if hi <= lo:
        return
    try:
        mm.madvise(mmap.MADV_DONTNEED, lo, hi - lo)
    except (AttributeError, OSError, ValueError):  # pragma: no cover
        pass  # platform without madvise: pages age out under pressure


@dataclass(frozen=True)
class ShardSpan:
    """One contiguous row range of a :class:`ShardedCSR`."""

    index: int  # shard ordinal (0-based)
    row_start: int  # first row (inclusive)
    row_stop: int  # last row (exclusive)
    nnz_start: int  # first stored non-zero
    nnz_stop: int  # last stored non-zero (exclusive)

    @property
    def nrows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def nnz(self) -> int:
        return self.nnz_stop - self.nnz_start


class ShardedCSR:
    """One orientation of a shard store, streamed as row-range CSR shards.

    Implements the surface the sweep kernels consult on the *whole*
    matrix (``shape``/``nnz``/``row_lengths``/``degree_bins``/``matmat``)
    plus byte-budgeted resident iteration (:meth:`shards`, :meth:`load`,
    :meth:`iter_resident`).  ``indptr`` is held in RAM (8 bytes/row —
    ~15 MB even at YahooMusic's 1.9M users); ``indices``/``values`` stay
    on disk behind ``np.memmap`` and are only materialized one shard at
    a time.  :meth:`load` copies the mapped slices into ordinary arrays
    (a :class:`CSRMatrix` must own plain RAM) and then drops the mapped
    pages, so residency really is bounded by the shard budget.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        orientation: str,
        shape: tuple[int, int],
        nnz: int,
        value_dtype: str = "float32",
        shard_bytes: int | None = None,
    ) -> None:
        if value_dtype not in VALUE_DTYPES:
            raise ValueError(f"value_dtype must be one of {VALUE_DTYPES}")
        self.directory = Path(directory)
        self.orientation = orientation
        self.shape = (int(shape[0]), int(shape[1]))
        self._nnz = int(nnz)
        self.value_dtype = np.dtype(value_dtype)
        self.shard_bytes = resolve_shard_bytes(shard_bytes)

        indptr_name, indices_name, values_name = orientation_filenames(orientation)
        indptr = _open_flat(
            self.directory / indptr_name, INDEX_DTYPE, self.shape[0] + 1
        )
        # indptr is consulted constantly (spans, lengths, loss streaming):
        # pull it into RAM once.
        self.row_ptr = np.array(indptr, dtype=np.int64)
        del indptr
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self._nnz:
            raise ValueError(
                f"{self.directory / indptr_name}: indptr must run 0..nnz"
            )
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError(f"{self.directory / indptr_name}: indptr decreases")
        self._indices = _open_flat(
            self.directory / indices_name, INDEX_DTYPE, self._nnz
        )
        self._values = _open_flat(
            self.directory / values_name, self.value_dtype, self._nnz
        )
        self._row_lengths: np.ndarray | None = None
        self._degree_bins: dict[float, tuple[DegreeBin, ...]] = {}
        self._span_cache: dict[int, tuple[ShardSpan, ...]] = {}
        self._min_value: float | None = None

    # ------------------------------------------------------------------
    # the CSRMatrix surface kernels consult on the whole matrix
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def col_idx(self) -> np.ndarray:
        """The memory-mapped column-index stream.

        Fancy indexing on the map copies only the touched pages, which
        is what lets a :class:`ShardedCSR` stand in for the training
        matrix in seen-item exclusion (``_seen_pairs`` gathers a handful
        of user rows) without residency.
        """
        return self._indices

    def row_lengths(self) -> np.ndarray:
        if self._row_lengths is None:
            lengths = np.diff(self.row_ptr)
            lengths.setflags(write=False)
            self._row_lengths = lengths
        return self._row_lengths

    def degree_bins(self, growth: float = 1.25) -> tuple[DegreeBin, ...]:
        """Global degree bins on the same fixed geometric grid as in RAM.

        ``starts`` index the *on-disk* nnz stream; resident shards bin
        themselves locally, so this exists for planners/stats, and to
        honor the grid invariant: a row's padded width is identical
        whether computed here, on a resident shard, or on the in-RAM
        matrix.
        """
        key = float(growth)
        cached = self._degree_bins.get(key)
        if cached is None:
            cached = build_degree_bins(self.row_ptr, self.row_lengths(), growth)
            self._degree_bins[key] = cached
        return cached

    def min_value(self) -> float:
        """Streaming min over stored values (implicit trainer's guard)."""
        if self._min_value is None:
            lo = np.inf
            for a, b in self._nnz_chunks():
                chunk = np.asarray(self._values[a:b])
                if chunk.size:
                    lo = min(lo, float(chunk.min()))
                _release_pages(self._values, a, b)
            self._min_value = float(lo) if np.isfinite(lo) else 0.0
        return self._min_value

    def matmat(self, B: np.ndarray, values: np.ndarray | None = None) -> np.ndarray:
        """Streaming ``R @ B``, one resident shard at a time.

        ``values`` (aligned with the on-disk value stream) substitutes
        per-non-zero coefficients, mirroring :meth:`CSRMatrix.matmat`.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.ncols:
            raise ValueError(f"dense operand must have {self.ncols} rows")
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (self.nnz,):
                raise ValueError(f"values must have shape ({self.nnz},)")
        out = np.zeros((self.nrows, B.shape[1]), dtype=np.float64)
        for sp, mat in self.iter_resident(prefetch=False):
            sub_values = None
            if values is not None:
                sub_values = values[sp.nnz_start : sp.nnz_stop]
            out[sp.row_start : sp.row_stop] = mat.matmat(B, values=sub_values)
        return out

    # ------------------------------------------------------------------
    # shard planning / loading
    # ------------------------------------------------------------------
    def storage_bytes_per_nnz(self) -> int:
        return INDEX_DTYPE.itemsize + self.value_dtype.itemsize

    def in_ram_bytes(self, extra_row_bytes: int = 0) -> int:
        """What the whole matrix would cost resident (CSR + per-row extra)."""
        return int(
            self.nnz * self.storage_bytes_per_nnz()
            + self.nrows * (INDEX_DTYPE.itemsize + extra_row_bytes)
        )

    def shards(self, extra_row_bytes: int = 0) -> tuple[ShardSpan, ...]:
        """Row-range spans whose resident cost fits the byte budget.

        A span's cost is its CSR bytes (values + indices + indptr) plus
        ``extra_row_bytes`` per row — the caller's per-row solve scratch
        (the executor passes ``8 * (k² + 2k)`` for the batched normal
        equations ``A``/``b`` and the factor panel), which at small k
        already dominates the CSR slice and would otherwise make the
        "budget" a fiction.  Single rows that alone exceed the budget
        still get a (one-row) span: correctness never depends on the
        budget being honorable.
        """
        extra_row_bytes = int(extra_row_bytes)
        if extra_row_bytes < 0:
            raise ValueError("extra_row_bytes must be >= 0")
        cached = self._span_cache.get(extra_row_bytes)
        if cached is not None:
            return cached
        m = self.nrows
        per_nnz = self.storage_bytes_per_nnz()
        per_row = INDEX_DTYPE.itemsize + extra_row_bytes
        # Cumulative resident cost of rows [0, i): cost(a, b) = cum[b] - cum[a].
        cum = self.row_ptr * per_nnz + np.arange(m + 1, dtype=np.int64) * per_row
        spans: list[ShardSpan] = []
        start = 0
        while start < m:
            stop = int(np.searchsorted(cum, cum[start] + self.shard_bytes, "right")) - 1
            stop = min(max(stop, start + 1), m)
            spans.append(
                ShardSpan(
                    index=len(spans),
                    row_start=start,
                    row_stop=stop,
                    nnz_start=int(self.row_ptr[start]),
                    nnz_stop=int(self.row_ptr[stop]),
                )
            )
            start = stop
        result = tuple(spans)
        self._span_cache[extra_row_bytes] = result
        return result

    def load(self, sp: ShardSpan) -> CSRMatrix:
        """Materialize one span as an in-RAM :class:`CSRMatrix`.

        The copy out of the memmap is the IO (first touch faults the
        pages in); afterwards the mapped pages are released so process
        residency tracks the *current* shard, not the store prefix
        already streamed past.
        """
        t0 = perf_counter()
        resident = (
            sp.nnz * self.storage_bytes_per_nnz()
            + (sp.nrows + 1) * INDEX_DTYPE.itemsize
        )
        with span(
            "als.shard.io",
            orientation=self.orientation,
            shard=sp.index,
            rows=sp.nrows,
            nnz=sp.nnz,
            bytes=resident,
        ):
            indices = np.array(self._indices[sp.nnz_start : sp.nnz_stop])
            values = np.array(self._values[sp.nnz_start : sp.nnz_stop])
            row_ptr = self.row_ptr[sp.row_start : sp.row_stop + 1] - self.row_ptr[
                sp.row_start
            ]
            mat = CSRMatrix((sp.nrows, self.ncols), values, indices, row_ptr)
        _release_pages(self._indices, sp.nnz_start, sp.nnz_stop)
        _release_pages(self._values, sp.nnz_start, sp.nnz_stop)
        if is_enabled():
            obs_metrics.observe_latency("shard.io_seconds", perf_counter() - t0)
            obs_metrics.set_gauge("shard.bytes_resident", float(resident))
            obs_metrics.inc("shard.loads")
            obs_metrics.inc("shard.bytes_read", float(resident))
        return mat

    def iter_resident(self, extra_row_bytes: int = 0, prefetch: bool = True):
        """Yield ``(span, CSRMatrix)`` one resident shard at a time.

        With ``prefetch=True`` a single background thread loads shard
        ``i + 1`` while the caller computes on shard ``i`` — double
        buffering that overlaps shard IO with compute, at a residency
        cost of at most one extra shard.  NumPy's copy loop releases the
        GIL on the page-faulting reads, so the overlap is real even
        single-process.
        """
        spans = self.shards(extra_row_bytes)
        if not prefetch or len(spans) <= 1:
            for sp in spans:
                yield sp, self.load(sp)
            return
        # Hand-rolled double buffer (not a ThreadPoolExecutor: one
        # worker, one slot, and a generator-close must not leak threads).
        result: list = [None]
        error: list = [None]

        def _fetch(sp: ShardSpan) -> threading.Thread:
            def run() -> None:
                try:
                    result[0] = self.load(sp)
                except BaseException as exc:  # propagate into the consumer
                    error[0] = exc

            t = threading.Thread(target=run, name="repro-shard-prefetch", daemon=True)
            t.start()
            return t

        thread = _fetch(spans[0])
        try:
            for i, sp in enumerate(spans):
                thread.join()
                if error[0] is not None:
                    raise error[0]
                mat, result[0] = result[0], None
                if i + 1 < len(spans):
                    thread = _fetch(spans[i + 1])
                yield sp, mat
        finally:
            thread.join()

    def to_csr(self) -> CSRMatrix:
        """The whole orientation as one in-RAM :class:`CSRMatrix`."""
        indices = np.array(self._indices)
        values = np.array(self._values)
        mat = CSRMatrix((self.nrows, self.ncols), values, indices, self.row_ptr)
        self.release_pages()
        return mat

    def release_pages(self) -> None:
        """Drop any resident mapped pages (RSS accounting hygiene)."""
        _release_pages(self._indices, 0, self._nnz)
        _release_pages(self._values, 0, self._nnz)

    def _nnz_chunks(self, chunk: int = 1 << 22):
        for a in range(0, self._nnz, chunk):
            yield a, min(a + chunk, self._nnz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCSR({self.orientation!r}, shape={self.shape}, "
            f"nnz={self.nnz}, shard_bytes={self.shard_bytes})"
        )


class ShardStore:
    """A packed two-orientation shard directory, opened for training.

    ``store.rows`` is the user-major orientation (the X half-sweep's
    ``R``), ``store.cols`` the item-major transpose (the Y half-sweep's
    ``Rᵀ``) — the same pair :func:`repro.core.als.ratings_views` plus
    :meth:`CSCMatrix.from_csr` build in RAM, with identical within-row
    entry order, so training on the store is bitwise-equal to training
    on the in-RAM matrices (float64, serial).
    """

    def __init__(self, directory: str | os.PathLike, meta: dict, rows: ShardedCSR, cols: ShardedCSR) -> None:
        self.directory = Path(directory)
        self.meta = meta
        self.rows = rows
        self.cols = cols

    @classmethod
    def open(
        cls, directory: str | os.PathLike, shard_bytes: int | None = None
    ) -> "ShardStore":
        directory = Path(directory)
        meta_path = directory / META_FILENAME
        if not meta_path.is_file():
            raise FileNotFoundError(
                f"{directory} is not a shard store (missing {META_FILENAME})"
            )
        meta = json.loads(meta_path.read_text())
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{directory}: shard store format {version!r}, "
                f"this build reads {FORMAT_VERSION}"
            )
        m, n = int(meta["m"]), int(meta["n"])
        nnz = int(meta["nnz"])
        value_dtype = meta.get("value_dtype", "float32")
        shard_bytes = resolve_shard_bytes(shard_bytes)
        rows = ShardedCSR(
            directory, "rows", (m, n), nnz, value_dtype, shard_bytes
        )
        cols = ShardedCSR(
            directory, "cols", (n, m), nnz, value_dtype, shard_bytes
        )
        return cls(directory, meta, rows, cols)

    @property
    def shape(self) -> tuple[int, int]:
        return self.rows.shape

    @property
    def nnz(self) -> int:
        return self.rows.nnz

    @property
    def shard_bytes(self) -> int:
        return self.rows.shard_bytes

    def to_csr(self, orientation: str = "rows") -> CSRMatrix:
        """One orientation fully materialized in RAM (tests, benchmarks)."""
        if orientation == "rows":
            return self.rows.to_csr()
        if orientation == "cols":
            return self.cols.to_csr()
        raise ValueError(f"orientation must be 'rows' or 'cols', got {orientation!r}")

    def release_pages(self) -> None:
        self.rows.release_pages()
        self.cols.release_pages()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardStore({str(self.directory)!r}, shape={self.shape}, "
            f"nnz={self.nnz})"
        )


def is_shard_store(path: str | os.PathLike) -> bool:
    """True when ``path`` is a directory holding a shard store."""
    return Path(path).is_dir() and (Path(path) / META_FILENAME).is_file()
