"""Row partitioning for work scheduling.

Two strategies used by the solvers:

* **contiguous** — split the row range into equal-count chunks; this is how
  the flat baseline assigns rows to threads and how work-groups enumerate
  rows in the thread-batched mapping.
* **balanced** — greedy longest-processing-time assignment by nnz, used by
  the OpenMP-style CPU baseline with dynamic scheduling, where a core can
  steal whole rows and the relevant imbalance is per-core total work rather
  than per-warp divergence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["RowPartition", "partition_rows_contiguous", "partition_rows_balanced"]


@dataclass(frozen=True)
class RowPartition:
    """Assignment of rows to ``nparts`` workers."""

    nparts: int
    assignment: np.ndarray  # assignment[row] = part index
    loads: np.ndarray  # total nnz per part

    @property
    def imbalance(self) -> float:
        """max load / mean load (1.0 = perfect balance)."""
        mean = self.loads.mean()
        return float(self.loads.max() / mean) if mean > 0 else 1.0

    def rows_of(self, part: int) -> np.ndarray:
        if not 0 <= part < self.nparts:
            raise IndexError(f"part {part} out of range")
        return np.nonzero(self.assignment == part)[0]


def partition_rows_contiguous(lengths: np.ndarray, nparts: int) -> RowPartition:
    """Split rows into ``nparts`` contiguous, equal-count chunks."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    nrows = lengths.size
    # np.array_split semantics: first (nrows % nparts) chunks get one extra row.
    assignment = np.empty(nrows, dtype=np.int64)
    base, extra = divmod(nrows, nparts)
    start = 0
    loads = np.zeros(nparts, dtype=np.int64)
    for p in range(nparts):
        size = base + (1 if p < extra else 0)
        assignment[start : start + size] = p
        loads[p] = lengths[start : start + size].sum()
        start += size
    return RowPartition(nparts, assignment, loads)


#: Above this row count the exact LPT heap (pure Python) is replaced by a
#: vectorized snake assignment; with millions of near-equal tail rows the
#: two are indistinguishable for load-modelling purposes.
_LPT_EXACT_LIMIT = 65536


def partition_rows_balanced(lengths: np.ndarray, nparts: int) -> RowPartition:
    """Balanced assignment: heaviest rows spread across the parts.

    For inputs up to ``_LPT_EXACT_LIMIT`` rows this is exact greedy LPT
    (load ≤ (4/3 − 1/(3·nparts)) × optimal).  Larger inputs use a
    boustrophedon ("snake") assignment of the descending-sorted rows —
    vectorized, and within a fraction of a percent of LPT on the
    heavy-tailed populations this library models.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    if lengths.size <= _LPT_EXACT_LIMIT:
        return _partition_lpt(lengths, nparts)
    return _partition_snake(lengths, nparts)


def _partition_lpt(lengths: np.ndarray, nparts: int) -> RowPartition:
    assignment = np.zeros(lengths.size, dtype=np.int64)
    loads = np.zeros(nparts, dtype=np.int64)
    order = np.argsort(lengths)[::-1]
    heap: list[tuple[int, int]] = [(0, p) for p in range(nparts)]
    heapq.heapify(heap)
    for row in order:
        load, part = heapq.heappop(heap)
        assignment[row] = part
        new_load = load + int(lengths[row])
        loads[part] = new_load
        heapq.heappush(heap, (new_load, part))
    return RowPartition(nparts, assignment, loads)


def _partition_snake(lengths: np.ndarray, nparts: int) -> RowPartition:
    order = np.argsort(lengths)[::-1]
    n = lengths.size
    # Positions 0..2p-1 repeat as 0,1,..,p-1,p-1,..,1,0 — the snake.
    cycle = np.arange(2 * nparts) % (2 * nparts)
    snake = np.where(cycle < nparts, cycle, 2 * nparts - 1 - cycle)
    assignment = np.empty(n, dtype=np.int64)
    assignment[order] = snake[np.arange(n) % (2 * nparts)]
    loads = np.bincount(assignment, weights=lengths, minlength=nparts).astype(np.int64)
    return RowPartition(nparts, assignment, loads)
