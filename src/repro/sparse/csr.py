"""Compressed sparse row storage (paper §III-A, Fig. 2).

The three arrays follow the paper's naming: ``value`` holds the non-zero
ratings row-major, ``col_idx`` the column index of each non-zero, and
``row_ptr`` the index of each row's first element (length ``m + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix

__all__ = ["CSRMatrix", "DegreeBin", "RowShard", "build_degree_bins"]


@dataclass(frozen=True)
class RowShard:
    """One worker's slice of a half-sweep: a row subset as its own CSR.

    ``rows`` maps the shard-local row index back to the parent matrix
    (``matrix`` row ``i`` is parent row ``rows[i]``); every shard row is
    occupied, so a shard's sweep result scatters straight into
    ``X[rows]``.
    """

    rows: np.ndarray  # (B,) parent row indices, ascending
    matrix: "CSRMatrix"  # the shard's own CSR view (B rows)

    @property
    def nnz(self) -> int:
        return self.matrix.nnz


@dataclass(frozen=True)
class DegreeBin:
    """One group of rows with (near-)equal non-zero counts.

    The Python analogue of the paper's thread batching: rows in a bin all
    gather the same padded width, so a whole bin reduces with one batched
    GEMM instead of per-row loops.  ``lengths`` is ascending and every
    length satisfies ``width / growth <= length <= width``, bounding the
    padding waste of a masked gather by the bin ``growth`` factor.

    ``width`` comes from a fixed geometric grid keyed only on ``growth``,
    so it is a pure function of a row's own degree — never of which other
    rows happen to share the matrix.  That is what makes assembly over
    any row subset (an executor shard, the occupied submatrix) bit-
    identical to assembly over the full matrix.
    """

    rows: np.ndarray  # (B,) row indices, ascending by degree
    starts: np.ndarray  # (B,) row_ptr[rows] — first nnz of each row
    lengths: np.ndarray  # (B,) nnz count per row, ascending
    width: int  # the grid bin's upper degree edge (padded gather width)

    @property
    def nnz(self) -> int:
        return int(self.lengths.sum())

    @property
    def is_uniform(self) -> bool:
        """True when no padding is needed (all rows share the width)."""
        return bool(self.lengths.size) and int(self.lengths[0]) == self.width


def build_degree_bins(
    row_ptr: np.ndarray, lengths: np.ndarray, growth: float
) -> tuple[DegreeBin, ...]:
    """Degree bins for any CSR-shaped ``(row_ptr, lengths)`` structure.

    Shared by :meth:`CSRMatrix.degree_bins` and the out-of-core
    :class:`~repro.sparse.shards.ShardedCSR` view (whose ``row_ptr``
    indexes the on-disk arrays): both bin on the same fixed geometric
    grid, so a row's padded width never depends on which rows happen to
    share the (sub)matrix.
    """
    if growth < 1.0:
        raise ValueError("growth must be >= 1")
    occupied = np.nonzero(lengths > 0)[0]
    order = np.argsort(lengths[occupied], kind="stable")
    rows = occupied[order]
    degs = lengths[occupied][order]
    bins: list[DegreeBin] = []
    i = 0
    while i < rows.size:
        _, hi = _grid_bin_edges(int(degs[i]), growth)
        j = int(np.searchsorted(degs, hi, side="right"))
        bin_rows = rows[i:j]
        bin_lengths = degs[i:j]
        starts = np.asarray(row_ptr)[bin_rows]
        for arr in (bin_rows, bin_lengths, starts):
            arr.setflags(write=False)
        bins.append(
            DegreeBin(
                rows=bin_rows,
                starts=starts,
                lengths=bin_lengths,
                width=hi,
            )
        )
        i = j
    return tuple(bins)


def _grid_bin_edges(degree: int, growth: float) -> tuple[int, int]:
    """The ``[lo, hi]`` degree range of the grid bin containing ``degree``.

    The grid is anchored at degree 1 and depends only on ``growth``:
    degrees below ``1/(growth-1)`` get singleton bins (a geometric step
    would advance by less than one), then edges grow multiplicatively
    (``hi = int(lo * growth)``).  Population-independent by construction.
    """
    if growth <= 1.0 or degree * growth < degree + 1:
        return degree, degree
    lo = 1
    while int(lo * growth) <= lo:  # singleton prefix, <= 1/(growth-1) steps
        lo += 1
    while True:
        hi = int(lo * growth)
        if degree <= hi:
            return lo, hi
        lo = hi + 1


class CSRMatrix:
    """An immutable CSR matrix over float32 values.

    This is the structure Algorithm 2 iterates: ``row_ptr[u]:row_ptr[u+1]``
    delimits row ``u``'s non-zeros, whose column indices select the rows of
    the factor matrix ``Y`` that participate in updating ``x_u``.
    """

    __slots__ = (
        "shape",
        "value",
        "col_idx",
        "row_ptr",
        "_row_lengths",
        "_expanded_rows",
        "_degree_bins",
        "_occupied_sub",
        "_row_shards",
    )

    def __init__(
        self,
        shape: tuple[int, int],
        value: np.ndarray,
        col_idx: np.ndarray,
        row_ptr: np.ndarray,
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        value = np.ascontiguousarray(value, dtype=np.float32)
        col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        if value.ndim != 1 or col_idx.ndim != 1 or row_ptr.ndim != 1:
            raise ValueError("CSR arrays must be 1-D")
        if value.size != col_idx.size:
            raise ValueError("value and col_idx must have the same length")
        if row_ptr.size != m + 1:
            raise ValueError(f"row_ptr must have length m+1={m + 1}, got {row_ptr.size}")
        if row_ptr[0] != 0 or row_ptr[-1] != value.size:
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValueError("col_idx out of range")
        self.shape = (m, n)
        self.value = value
        self.col_idx = col_idx
        self.row_ptr = row_ptr
        # Derived-structure caches.  The matrix is immutable (the three
        # arrays are never reassigned and the caches are handed out
        # read-only), so nothing here can go stale — "invalidation" is
        # the read-only flag that forbids the mutation that would need it.
        self._row_lengths: np.ndarray | None = None
        self._expanded_rows: np.ndarray | None = None
        self._degree_bins: dict[float, tuple[DegreeBin, ...]] = {}
        self._occupied_sub: tuple[np.ndarray, "CSRMatrix"] | None = None
        self._row_shards: dict[int, tuple[RowShard, ...]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        coo = coo.deduplicate()
        m, _ = coo.shape
        order = np.lexsort((coo.col, coo.row))
        row = coo.row[order]
        counts = np.bincount(row, minlength=m)
        row_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return cls(coo.shape, coo.value[order], coo.col[order], row_ptr)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.value.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def row_lengths(self) -> np.ndarray:
        """nnz per row — the ``omegaSize`` sequence of Algorithm 2.

        Computed once and cached (read-only): every half-sweep consults
        it for the occupancy guard and the assembly walks it for binning,
        so rebuilding per call would re-walk the structure each sweep.
        """
        if self._row_lengths is None:
            lengths = np.diff(self.row_ptr)
            lengths.setflags(write=False)
            self._row_lengths = lengths
        return self._row_lengths

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def row_slice(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(col_idx, value)`` views for row ``u``."""
        if not 0 <= u < self.nrows:
            raise IndexError(f"row {u} out of range for {self.nrows} rows")
        lo, hi = self.row_ptr[u], self.row_ptr[u + 1]
        return self.col_idx[lo:hi], self.value[lo:hi]

    def count_nonzeros(self, u: int) -> int:
        """``CountNonZeros(R, u)`` from Algorithm 2."""
        return int(self.row_ptr[u + 1] - self.row_ptr[u])

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        rows = np.repeat(np.arange(self.nrows), self.row_lengths())
        out[rows, self.col_idx] = self.value
        return out

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_lengths())
        return COOMatrix(self.shape, rows, self.col_idx.copy(), self.value.copy())

    def expanded_rows(self) -> np.ndarray:
        """Row index of every stored non-zero (length nnz).

        Cached (read-only): the scatter assembly and the segment-summed
        products all key on it, and at MovieLens scale the repeat is an
        O(nnz) allocation per half-sweep worth skipping.
        """
        if self._expanded_rows is None:
            rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_lengths())
            rows.setflags(write=False)
            self._expanded_rows = rows
        return self._expanded_rows

    def degree_bins(self, growth: float = 1.25) -> tuple[DegreeBin, ...]:
        """Group occupied rows by non-zero count (cached per ``growth``).

        Rows are sorted by degree and split along a fixed geometric grid
        whose max/min degree ratio stays below ``growth``; each bin can
        then be gathered as one dense ``(rows, width, k)`` block with at
        most ``growth - 1`` padding waste.  ``growth = 1`` gives
        exact-degree bins.  This is the host-side counterpart of the
        paper's thread batching: equal work per lane, no divergence,
        bounded bin count (geometric in the max degree).

        Because the grid (and hence every row's padded width) depends
        only on ``growth``, binning any row subset yields the same
        per-row widths as binning the full matrix — the invariant the
        parallel sweep executor relies on for bitwise determinism.
        """
        if growth < 1.0:
            raise ValueError("growth must be >= 1")
        key = float(growth)
        cached = self._degree_bins.get(key)
        if cached is not None:
            return cached
        result = build_degree_bins(self.row_ptr, self.row_lengths(), growth)
        self._degree_bins[key] = result
        return result

    # ------------------------------------------------------------------
    # row subsets (the sweep executor's sharding substrate)
    # ------------------------------------------------------------------
    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """A new CSR holding the given rows (in the given order).

        Column space is preserved, so the subset participates in the same
        normal equations as the parent; each selected row's non-zeros keep
        their storage order, which is what makes per-shard assembly
        reproduce the full-matrix assembly bit for bit.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("rows must be 1-D")
        if rows.size and (rows.min() < 0 or rows.max() >= self.nrows):
            raise IndexError("row index out of range")
        lengths = self.row_lengths()[rows]
        row_ptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=row_ptr[1:])
        total = int(row_ptr[-1])
        # Gather source positions: each row's contiguous slice, laid out
        # back to back — starts repeated per-entry plus the within-row
        # offset recovers every source index without a Python loop.
        starts = np.repeat(self.row_ptr[rows], lengths)
        offs = np.arange(total, dtype=np.int64) - np.repeat(row_ptr[:-1], lengths)
        src = starts + offs
        return CSRMatrix(
            (rows.size, self.ncols), self.value[src], self.col_idx[src], row_ptr
        )

    def occupied_submatrix(self) -> tuple[np.ndarray, "CSRMatrix"]:
        """``(rows, sub)`` with only the occupied rows of this matrix.

        Cached: the half-sweep consults it every iteration to skip
        assembling normal equations for empty rows (Algorithm 2's
        ``omegaSize > 0`` guard, applied *before* S1 rather than only
        before S3).  When every row is occupied the matrix itself is
        returned, so the common dense-rows case costs one cached check.
        """
        if self._occupied_sub is None:
            lengths = self.row_lengths()
            rows = np.nonzero(lengths > 0)[0]
            if rows.size == self.nrows:
                sub = self
            else:
                sub = self.take_rows(rows)
            rows.setflags(write=False)
            self._occupied_sub = (rows, sub)
        return self._occupied_sub

    def row_shards(self, nparts: int) -> tuple[RowShard, ...]:
        """Occupied rows split into ``nparts`` nnz-balanced CSR shards.

        Uses the greedy LPT / snake partitioner
        (:func:`repro.sparse.partition.partition_rows_balanced`) over the
        occupied rows' non-zero counts, then materializes each part as
        its own CSR via :meth:`take_rows`.  Cached per ``nparts``: a
        training run re-sweeps the same matrix every iteration, so the
        executor pays the partition + gather once.  Empty parts (more
        workers than occupied rows) are dropped.
        """
        nparts = int(nparts)
        if nparts <= 0:
            raise ValueError("nparts must be positive")
        cached = self._row_shards.get(nparts)
        if cached is not None:
            return cached
        from repro.sparse.partition import partition_rows_balanced

        occ_rows, _ = self.occupied_submatrix()
        lengths = self.row_lengths()[occ_rows]
        part = partition_rows_balanced(lengths, min(nparts, max(1, occ_rows.size)))
        shards: list[RowShard] = []
        for p in range(part.nparts):
            local = part.rows_of(p)
            if local.size == 0:
                continue
            rows = occ_rows[local]  # ascending: rows_of returns sorted indices
            rows.setflags(write=False)
            shards.append(RowShard(rows=rows, matrix=self.take_rows(rows)))
        result = tuple(shards)
        self._row_shards[nparts] = result
        return result

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``R @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"vector of length {self.ncols} expected")
        prods = self.value.astype(np.float64) * x[self.col_idx]
        # bincount is NumPy's fast segment-sum: a single C pass over the
        # non-zeros, where np.add.at pays per-element dispatch.
        return np.bincount(self.expanded_rows(), weights=prods, minlength=self.nrows)

    def matmat(self, B: np.ndarray, values: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix–dense matrix product ``R @ B``.

        One bincount segment-sum per output column: peak scratch is two
        length-nnz vectors regardless of ``B``'s width, versus the
        ``(nnz, width)`` gather the previous ``np.add.at`` path built.

        ``values`` substitutes a per-non-zero coefficient array (aligned
        with ``self.value``) for the stored values — the hook the
        implicit-feedback RHS uses to sum ``(1 + α·r)·y_i`` without
        materializing a reweighted matrix.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.ncols:
            raise ValueError(f"dense operand must have {self.ncols} rows")
        rows = self.expanded_rows()
        if values is None:
            w = self.value.astype(np.float64)
        else:
            w = np.asarray(values, dtype=np.float64)
            if w.shape != (self.nnz,):
                raise ValueError(f"values must have shape ({self.nnz},)")
        out = np.empty((self.nrows, B.shape[1]), dtype=np.float64)
        for j in range(B.shape[1]):
            out[:, j] = np.bincount(
                rows, weights=w * B[self.col_idx, j], minlength=self.nrows
            )
        return out

    def transpose_to_csr(self) -> "CSRMatrix":
        """Return the transpose, itself in CSR form (= this matrix in CSC)."""
        return CSRMatrix.from_coo(self.to_coo().transpose())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.col_idx, other.col_idx)
            and np.array_equal(self.value, other.value)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
