"""Compressed sparse column storage.

The paper uses CSC when updating the item factors ``y_i`` (§III-A): same
three-array layout as CSR but column-major.  Internally we represent CSC as
the CSR form of the transpose, which keeps one set of validated kernels.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """An immutable CSC matrix over float32 values.

    ``value`` stores non-zeros column-major, ``row_idx`` their row indices
    and ``col_ptr`` each column's first element (length ``n + 1``).
    """

    __slots__ = ("shape", "_t")

    def __init__(
        self,
        shape: tuple[int, int],
        value: np.ndarray,
        row_idx: np.ndarray,
        col_ptr: np.ndarray,
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        # The transpose seen as CSR has shape (n, m): col_ptr becomes row_ptr
        # and row_idx becomes col_idx.  CSRMatrix performs all validation.
        self._t = CSRMatrix((n, m), value, row_idx, col_ptr)
        self.shape = (m, n)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        t = CSRMatrix.from_coo(coo.transpose())
        obj = cls.__new__(cls)
        obj._t = t
        obj.shape = coo.shape
        return obj

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        return cls.from_coo(csr.to_coo())

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # the paper's three arrays
    # ------------------------------------------------------------------
    @property
    def value(self) -> np.ndarray:
        return self._t.value

    @property
    def row_idx(self) -> np.ndarray:
        return self._t.col_idx

    @property
    def col_ptr(self) -> np.ndarray:
        return self._t.row_ptr

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._t.nnz

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def col_lengths(self) -> np.ndarray:
        """nnz per column — the ``omegaSize`` sequence for the Y update."""
        return self._t.row_lengths()

    def col_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_idx, value)`` views for column ``i``."""
        return self._t.row_slice(i)

    def count_nonzeros(self, i: int) -> int:
        return self._t.count_nonzeros(i)

    # ------------------------------------------------------------------
    # views / conversions
    # ------------------------------------------------------------------
    def transpose_as_csr(self) -> CSRMatrix:
        """The transpose of this matrix, as CSR (zero-copy)."""
        return self._t

    def to_dense(self) -> np.ndarray:
        return self._t.to_dense().T

    def to_coo(self) -> COOMatrix:
        return self._t.to_coo().transpose()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return self.shape == other.shape and self._t == other._t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
