"""Coordinate-format sparse matrix.

COO is the interchange format: dataset loaders and generators produce COO
triplets ``<userID, itemID, rating>`` (the paper's preprocessing format,
§IV-B) and the solvers convert them to CSR/CSC once, up front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix"]


@dataclass(frozen=True)
class COOMatrix:
    """An (m × n) sparse matrix as parallel ``(row, col, value)`` arrays.

    Invariants enforced at construction:

    * the three arrays share one length (``nnz``),
    * indices are in-range non-negative integers,
    * values are finite float32.

    Duplicate ``(row, col)`` pairs are allowed at construction and resolved
    by :meth:`deduplicate` (last write wins, matching how rating files are
    typically reconciled).
    """

    shape: tuple[int, int]
    row: np.ndarray
    col: np.ndarray
    value: np.ndarray

    def __post_init__(self) -> None:
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError(f"shape must be non-negative, got {self.shape}")
        row = np.ascontiguousarray(self.row, dtype=np.int64)
        col = np.ascontiguousarray(self.col, dtype=np.int64)
        value = np.ascontiguousarray(self.value, dtype=np.float32)
        if not (row.ndim == col.ndim == value.ndim == 1):
            raise ValueError("row, col and value must be 1-D arrays")
        if not (row.size == col.size == value.size):
            raise ValueError(
                f"length mismatch: row={row.size} col={col.size} value={value.size}"
            )
        if row.size:
            if row.min(initial=0) < 0 or (m and row.max(initial=0) >= m):
                raise ValueError("row index out of range")
            if col.min(initial=0) < 0 or (n and col.max(initial=0) >= n):
                raise ValueError("col index out of range")
            if not np.isfinite(value).all():
                raise ValueError("values must be finite")
        # dataclass is frozen; route normalized arrays through object.__setattr__
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "value", value)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense array, treating zeros as missing."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col].astype(np.float32))

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        z = np.empty(0, dtype=np.int64)
        return cls(shape, z, z, np.empty(0, dtype=np.float32))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.value.size)

    @property
    def density(self) -> float:
        m, n = self.shape
        cells = m * n
        return self.nnz / cells if cells else 0.0

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def deduplicate(self) -> "COOMatrix":
        """Resolve duplicate coordinates, keeping the last occurrence."""
        if self.nnz == 0:
            return self
        keys = self.row * self.shape[1] + self.col
        # stable sort keeps original order within equal keys; taking the last
        # entry of each run implements last-write-wins.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        is_last = np.empty(sorted_keys.size, dtype=bool)
        is_last[:-1] = sorted_keys[:-1] != sorted_keys[1:]
        is_last[-1] = True
        keep = order[is_last]
        return COOMatrix(self.shape, self.row[keep], self.col[keep], self.value[keep])

    def transpose(self) -> "COOMatrix":
        return COOMatrix((self.shape[1], self.shape[0]), self.col, self.row, self.value)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        out[self.row, self.col] = self.value
        return out

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy ordered row-major (row, then column)."""
        order = np.lexsort((self.col, self.row))
        return COOMatrix(self.shape, self.row[order], self.col[order], self.value[order])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        a = self.sorted_by_row()
        b = other.sorted_by_row()
        return (
            a.shape == b.shape
            and np.array_equal(a.row, b.row)
            and np.array_equal(a.col, b.col)
            and np.array_equal(a.value, b.value)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
