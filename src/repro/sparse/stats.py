"""Degree statistics of rating matrices.

The performance model (repro.clsim.costmodel) is driven entirely by the
nnz-per-row/column sequence: divergence penalties depend on the max/mean
length inside each warp-aligned window, and total work depends on its sum.
This module computes those statistics once per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DegreeStats", "degree_stats", "gini_coefficient", "window_imbalance"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an nnz-per-row (or per-column) sequence."""

    count: int
    nnz: int
    mean: float
    max: int
    min: int
    std: float
    empty_fraction: float
    gini: float

    def __str__(self) -> str:
        return (
            f"rows={self.count} nnz={self.nnz} mean={self.mean:.2f} "
            f"max={self.max} gini={self.gini:.3f}"
        )


def degree_stats(lengths: np.ndarray) -> DegreeStats:
    """Compute :class:`DegreeStats` for a degree sequence."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise ValueError("degree sequence must be 1-D")
    if lengths.size == 0:
        return DegreeStats(0, 0, 0.0, 0, 0, 0.0, 0.0, 0.0)
    if lengths.min() < 0:
        raise ValueError("degrees must be non-negative")
    return DegreeStats(
        count=int(lengths.size),
        nnz=int(lengths.sum()),
        mean=float(lengths.mean()),
        max=int(lengths.max()),
        min=int(lengths.min()),
        std=float(lengths.std()),
        empty_fraction=float((lengths == 0).mean()),
        gini=gini_coefficient(lengths),
    )


def gini_coefficient(lengths: np.ndarray) -> float:
    """Gini coefficient of a degree sequence (0 = uniform, →1 = skewed).

    Recommender datasets are heavily skewed (§III-B: "the number of nonzeros
    varies over rows/columns"); the Gini quantifies how severe the imbalance
    is, and the baseline's divergence penalty grows with it.
    """
    x = np.sort(np.asarray(lengths, dtype=np.float64))
    n = x.size
    if n == 0:
        return 0.0
    total = x.sum()
    if total == 0.0:
        return 0.0
    # Standard closed form over the sorted sequence.
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * x).sum() / (n * total)) - (n + 1.0) / n)


def window_imbalance(lengths: np.ndarray, window: int) -> float:
    """Mean of ``max(window) / mean(window)`` over aligned windows.

    With the flat one-thread-per-row mapping, a warp/SIMD group of size
    ``window`` advances at the pace of its longest row, so the group wastes
    ``max/mean`` of its lanes on average.  A value of 1.0 means perfectly
    balanced windows; recommender data typically lands between 2 and 8 for
    warp-sized windows.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if lengths.size == 0:
        return 1.0
    pad = (-lengths.size) % window
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad)])
    tiles = lengths.reshape(-1, window)
    maxes = tiles.max(axis=1)
    means = tiles.mean(axis=1)
    occupied = means > 0
    if not occupied.any():
        return 1.0
    return float((maxes[occupied] / means[occupied]).mean())
