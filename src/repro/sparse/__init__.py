"""Sparse-matrix substrate built from scratch for the ALS reproduction.

The paper stores the rating matrix ``R`` in compressed sparse row (CSR) form
when updating ``X`` and compressed sparse column (CSC) form when updating
``Y`` (paper §III-A, Fig. 2).  This package provides those structures plus the
degree statistics the performance model consumes.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix, DegreeBin, RowShard
from repro.sparse.csc import CSCMatrix
from repro.sparse.stats import (
    DegreeStats,
    degree_stats,
    gini_coefficient,
    window_imbalance,
)
from repro.sparse.partition import (
    RowPartition,
    partition_rows_balanced,
    partition_rows_contiguous,
)
from repro.sparse.shards import (
    ShardSpan,
    ShardStore,
    ShardedCSR,
    configure_sharding,
    is_shard_store,
    resolve_shard_bytes,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "DegreeBin",
    "RowShard",
    "DegreeStats",
    "degree_stats",
    "gini_coefficient",
    "window_imbalance",
    "RowPartition",
    "partition_rows_balanced",
    "partition_rows_contiguous",
    "ShardSpan",
    "ShardStore",
    "ShardedCSR",
    "configure_sharding",
    "is_shard_store",
    "resolve_shard_bytes",
]
