"""Multicore execution of the ALS half-sweep.

The paper's whole premise is mapping ALS onto multi-core hardware; this
package is the host-side analogue of its per-device execution engine: an
nnz-balanced row sharding (the LPT partitioner the OpenMP baseline uses)
driven by a thread pool, with BLAS/LAPACK releasing the GIL inside each
shard's batched GEMMs and factorizations.
"""

from repro.parallel.executor import (
    SweepExecutor,
    configure_workers,
    resolve_workers,
    WORKERS_ENV,
)

__all__ = [
    "SweepExecutor",
    "configure_workers",
    "resolve_workers",
    "WORKERS_ENV",
]
