"""The multicore half-sweep executor.

ALS's half-sweep is embarrassingly parallel across rows — the paper's
devices exploit that with work-groups; a NumPy host exploits it with a
thread pool, because every heavy kernel a shard runs (batched GEMM
assembly, LAPACK factorization, triangular solves) drops the GIL.

``SweepExecutor`` shards the occupied rows of a matrix with the
nnz-balanced partitioner (:meth:`CSRMatrix.row_shards`, greedy LPT — the
same scheduling idea as the paper's OpenMP dynamic baseline), runs
``sweep_occupied`` per shard on a shared ``ThreadPoolExecutor``, and
scatters the per-shard factors into the output. Shard results depend
only on each row's own non-zeros, so the parallel sweep is bit-identical
to the serial one (asserted by tests/parallel/).

Worker-count resolution mirrors the assembly knobs: explicit argument >
:func:`configure_workers` (CLI) > ``REPRO_WORKERS`` environment > serial.
``"auto"`` means one worker per available core.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.kernels.fastpath import sweep_occupied
from repro.obs import metrics as obs_metrics
from repro.obs.spans import is_enabled, span
from repro.sparse.csr import CSRMatrix, RowShard
from repro.sparse.shards import ShardedCSR

__all__ = [
    "SweepExecutor",
    "configure_workers",
    "resolve_workers",
    "solve_bytes_per_row",
    "WORKERS_ENV",
]


def solve_bytes_per_row(k: int) -> int:
    """Resident solve-path bytes one occupied row adds beyond its CSR slice.

    The batched normal equations hold ``A`` (k², float64) and ``b`` (k)
    per row, and the solved factor panel adds another k — at small k
    these dominate a row's CSR bytes (k = 32: ~8.7 KB/row vs ~600 B of
    ratings at Netflix density), so the out-of-core planner must budget
    them per shard row or the "byte budget" would be a fiction.  Only
    the sweep layer knows k, hence the hook lives here, not in
    :meth:`ShardedCSR.shards`.
    """
    return 8 * (k * k + 2 * k)

WORKERS_ENV = "REPRO_WORKERS"

# Process-wide default installed by configure_workers (the CLI flag
# lands here); ``None`` falls through to the environment, then serial.
_CONFIGURED: dict[str, int | None] = {"workers": None}


def _parse_workers(value: int | str) -> int:
    """Normalize a workers spec (``"auto"``, ``"4"``, ``4``) to a count."""
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            value = int(value)
        except ValueError:
            raise ValueError(
                f"workers must be 'auto' or a positive integer, got {value!r}"
            ) from None
    workers = int(value)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def configure_workers(workers: int | str | None = None) -> None:
    """Install a process-wide worker-count default (``None`` resets it)."""
    _CONFIGURED["workers"] = None if workers is None else _parse_workers(workers)


def resolve_workers(workers: int | str | None = None) -> int:
    """The effective worker count for a sweep.

    Precedence: explicit ``workers`` > :func:`configure_workers` >
    ``REPRO_WORKERS`` > 1 (serial — the seed behavior).
    """
    if workers is not None:
        return _parse_workers(workers)
    if _CONFIGURED["workers"] is not None:
        return _CONFIGURED["workers"]
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return _parse_workers(env)
        except ValueError as exc:
            raise ValueError(f"{WORKERS_ENV}={env!r}: {exc}") from None
    return 1


class SweepExecutor:
    """Runs half-sweeps, sharded across a reusable thread pool.

    One executor serves a whole training run: the pool is created lazily
    on the first parallel sweep and reused for every iteration (shard
    structures are cached on the matrices themselves, so per-iteration
    overhead is submit/collect only).  Use as a context manager or call
    :meth:`close` to release the pool.
    """

    def __init__(self, workers: int | str | None = None):
        self.workers = resolve_workers(workers)
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _pool_for(self, nshards: int) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-sweep"
            )
        return self._pool

    # -- generic fan-out ----------------------------------------------
    def map(self, fn, items) -> list:
        """Run ``fn`` over ``items`` on the pool, preserving order.

        The generic fan-out primitive under both the training sweep and
        the serving engine's user-block sharding: any independent
        NumPy-heavy work items (their kernels drop the GIL) can ride the
        same reusable pool.  With one worker this degrades to a plain
        loop — same code path, no pool, no threads.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._pool_for(len(items))
        futures = [pool.submit(fn, item) for item in items]
        return [fut.result() for fut in futures]

    # -- the sweep -----------------------------------------------------
    def half_sweep(
        self,
        R: CSRMatrix | ShardedCSR,
        Y: np.ndarray,
        lam: float,
        X_prev: np.ndarray | None = None,
        weighted: bool = False,
        solver: str | None = None,
        cholesky: bool = True,
        assembly: str | None = None,
        tile_nnz: int | None = None,
        compute_dtype: object | None = None,
        implicit_alpha: float | None = None,
        base_gram: np.ndarray | None = None,
        out: np.ndarray | None = None,
        col_block: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Update all rows of ``R`` (Eq. 4), sharded across the pool.

        With one worker this is exactly the serial fast path — same code,
        same result, no pool; with N workers the occupied rows are split
        into N nnz-balanced shards solved concurrently.  Either way rows
        without ratings keep their previous value (or zero).

        A :class:`ShardedCSR` ``R`` runs the blocked out-of-core sweep
        instead: row-range shards stream from disk under the byte budget
        (one prefetched ahead), each resident shard sweeps through this
        same executor (so ``workers`` shards *within* the resident
        block), and results land in the same ``(m, k)`` output.  Every
        row's system is independent and binning is grid-fixed, so the
        result is bitwise-identical to the in-RAM sweep.

        ``out`` supplies the output array (e.g. a memory-mapped factor
        matrix — each resident shard's rows spill as they are solved);
        passing ``out is X_prev`` updates in place without a copy, which
        is safe because row ``u``'s update reads only ``Y`` and row
        ``u``'s ratings, never other rows of ``X``.

        ``implicit_alpha``/``base_gram`` select the implicit-feedback
        kernel (see :func:`repro.kernels.fastpath.sweep_occupied`); both
        are forwarded verbatim to every shard, and each shard derives its
        confidence weights from its own values, so the parallel implicit
        sweep stays bitwise-identical to the serial one.

        ``col_block=(start, stop)`` restricts the update to that column
        block of the factors (iALS++ subspace descent): only columns
        ``[start, stop)`` of the output are written, and each shard reads
        the frozen complement coordinates from a pre-sweep snapshot of
        its own rows — all snapshots are taken before any shard result is
        scattered, so every row sees start-of-block values (Jacobi within
        the block) and the parallel block update stays bitwise-identical
        to the serial one.
        """
        if lam <= 0:
            raise ValueError("lam must be positive (λI keeps smat SPD)")
        k = Y.shape[1]
        if col_block is not None:
            start, stop = int(col_block[0]), int(col_block[1])
            if not (0 <= start < stop <= k):
                raise ValueError(
                    f"col_block [{start}, {stop}) out of range for k={k}"
                )
            col_block = (start, stop)
        kernel_kw = dict(
            weighted=weighted, solver=solver, cholesky=cholesky,
            assembly=assembly, tile_nnz=tile_nnz, compute_dtype=compute_dtype,
            implicit_alpha=implicit_alpha, base_gram=base_gram,
            col_block=col_block,
        )
        X = self._prepare_out(R.nrows, k, X_prev, out)
        if isinstance(R, ShardedCSR):
            extra = solve_bytes_per_row(k)
            spans = R.shards(extra)
            with span(
                "als.sweep.sharded",
                shards=len(spans),
                shard_bytes=R.shard_bytes,
                workers=self.workers,
                k=k,
            ):
                for sp, mat in R.iter_resident(extra_row_bytes=extra):
                    with span(
                        "als.resident_shard",
                        shard=sp.index,
                        rows=sp.nrows,
                        nnz=sp.nnz,
                    ):
                        self._sweep_into(X, sp.row_start, mat, Y, lam, kernel_kw)
            if is_enabled():
                obs_metrics.set_gauge("sweep.resident_shards", len(spans))
            return X
        self._sweep_into(X, 0, R, Y, lam, kernel_kw)
        return X

    @staticmethod
    def _prepare_out(
        m: int, k: int, X_prev: np.ndarray | None, out: np.ndarray | None
    ) -> np.ndarray:
        if out is None:
            X = np.zeros((m, k), dtype=np.float64)
        else:
            if out.shape != (m, k):
                raise ValueError(f"out must have shape {(m, k)}")
            if out.dtype != np.float64:
                raise ValueError("out must be float64")
            X = out
            if X_prev is None:
                X[:] = 0.0
        if X_prev is not None and X_prev is not X:
            if X_prev.shape != (m, k):
                raise ValueError(f"X_prev must have shape {(m, k)}")
            X[:] = X_prev
        return X

    def _sweep_into(
        self,
        X: np.ndarray,
        base_row: int,
        R: CSRMatrix,
        Y: np.ndarray,
        lam: float,
        kernel_kw: dict,
    ) -> None:
        """Sweep one in-RAM matrix into ``X[base_row:base_row + R.nrows]``."""
        k = Y.shape[1]
        block = kernel_kw.get("col_block")
        # A full-width block needs no complement snapshot and scatters the
        # whole row — identical to the unblocked sweep.
        strict = block is not None and block[1] - block[0] < k

        def scatter(idx: np.ndarray, vals: np.ndarray) -> None:
            if block is None:
                X[idx] = vals
            else:
                X[idx, block[0]:block[1]] = vals

        if self.workers <= 1:
            kw = kernel_kw
            if strict:
                kw = dict(kernel_kw, X_current=X[base_row:base_row + R.nrows])
            rows, X_rows = sweep_occupied(R, Y, lam, **kw)
            scatter(base_row + rows, X_rows)
            return

        shards = R.row_shards(self.workers)
        if len(shards) <= 1:
            kw = kernel_kw
            if strict:
                kw = dict(kernel_kw, X_current=X[base_row:base_row + R.nrows])
            rows, X_rows = sweep_occupied(R, Y, lam, **kw)
            scatter(base_row + rows, X_rows)
            return

        enabled = is_enabled()
        with span(
            "als.sweep.parallel", workers=self.workers, shards=len(shards), k=k
        ):
            pool = self._pool_for(len(shards))
            futures = []
            for i, shard in enumerate(shards):
                kw = kernel_kw
                if strict:
                    # Fancy indexing snapshots the shard's rows *now* —
                    # before any shard result lands in X — so workers
                    # read start-of-block complement values regardless of
                    # collection order (bitwise equal to serial).
                    kw = dict(kernel_kw, X_current=X[base_row + shard.rows])
                futures.append(
                    pool.submit(self._run_shard, i, shard, Y, lam, kw)
                )
            shard_seconds = []
            for shard, fut in zip(shards, futures):
                rows, X_rows, seconds = fut.result()
                scatter(base_row + shard.rows[rows], X_rows)
                shard_seconds.append(seconds)
        if enabled:
            planned = np.array([s.nnz for s in shards], dtype=np.float64)
            measured = np.array(shard_seconds)
            obs_metrics.set_gauge("sweep.workers", self.workers)
            obs_metrics.set_gauge("sweep.shards", len(shards))
            obs_metrics.set_gauge(
                "sweep.imbalance.planned", float(planned.max() / planned.mean())
            )
            if measured.mean() > 0:
                imbalance = float(measured.max() / measured.mean())
                # Gauge keeps the latest sweep visible on a dashboard;
                # the histogram keeps every sweep of a multi-iteration
                # run so imbalance drift is not overwritten away.
                obs_metrics.set_gauge("sweep.imbalance.measured", imbalance)
                obs_metrics.observe("sweep.imbalance.measured", imbalance)
            for s in shard_seconds:
                # Summary + quantile sketch: shard p95 vs p50 is the
                # straggler signal the nnz-balanced partitioner targets.
                obs_metrics.observe_latency("sweep.shard_seconds", s)

    @staticmethod
    def _run_shard(
        index: int, shard: RowShard, Y: np.ndarray, lam: float, kernel_kw: dict
    ) -> tuple[np.ndarray, np.ndarray, float]:
        t0 = perf_counter()
        with span(
            "als.shard",
            shard=index,
            rows=int(shard.rows.size),
            nnz=shard.nnz,
        ):
            rows, X_rows = sweep_occupied(shard.matrix, Y, lam, **kernel_kw)
        return rows, X_rows, perf_counter() - t0
